"""Server tests: concurrency smoke, shutdown draining, metrics, errors."""

import threading

import numpy as np
import pytest

from repro import (
    BatchPolicy,
    GustPipeline,
    MatrixRegistry,
    SpmvClient,
    SpmvServer,
    uniform_random,
)
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    HardwareConfigError,
    InjectedFaultError,
    QueueFullError,
    ServeError,
    ServerStoppedError,
    WorkerCrashedError,
)
from repro.faults import FaultPlan


def _make_server(**policy_kwargs) -> SpmvServer:
    policy = BatchPolicy(**policy_kwargs) if policy_kwargs else BatchPolicy()
    return SpmvServer(registry=MatrixRegistry(length=16), policy=policy)


class TestHundredConcurrentClients:
    def test_smoke(self):
        """The CI acceptance smoke: 100 threads, zero lost or wrong
        responses, a non-trivial batch-size histogram, and no lock-order
        inversions across the server's whole lock set.

        Results are checked against the pre-plan scatter path
        (``backend="legacy-scatter"``), the reference the whole replay
        stack is pinned to.
        """
        from repro.analysis import LockOrderMonitor

        matrices = {
            "alpha": uniform_random(96, 96, 0.08, seed=5),
            "beta": uniform_random(64, 64, 0.1, seed=6),
        }
        reference = {}
        for name, matrix in matrices.items():
            pipeline = GustPipeline(16, backend="legacy-scatter")
            schedule, balanced, _ = pipeline.preprocess(matrix)
            reference[name] = (
                lambda x, p=pipeline, s=schedule, b=balanced:
                p.execute_scatter(s, b, x)
            )
        server = _make_server(max_batch=16, max_wait_s=0.01, max_queue=256)
        # Instrument every lock the serve path can take (the batcher's
        # Condition stays native: wrapping would change its wait/notify
        # surface) before any request-side acquisition happens.
        monitor = LockOrderMonitor()
        server._state_lock = monitor.wrap(
            server._state_lock, "server._state_lock"
        )
        server.metrics._lock = monitor.wrap(
            server.metrics._lock, "metrics._lock"
        )
        server.registry._lock = monitor.wrap(
            server.registry._lock, "registry._lock"
        )
        server.registry.cache._lock = monitor.wrap(
            server.registry.cache._lock, "cache._lock"
        )
        for name, matrix in matrices.items():
            entry = server.register(name, matrix)
            entry.pipeline._plan_lock = monitor.wrap(
                entry.pipeline._plan_lock, f"pipeline[{name}]._plan_lock"
            )
        client = SpmvClient(server)
        names = sorted(matrices)
        mismatches = []
        lock = threading.Lock()
        barrier = threading.Barrier(100)

        def one_request(index: int) -> None:
            rng = np.random.default_rng(index)
            name = names[index % len(names)]
            x = rng.normal(size=matrices[name].shape[1])
            barrier.wait(timeout=30)
            y = client.spmv(name, x, timeout=30.0, retries=100)
            if not (np.asarray(y) == reference[name](x)).all():
                with lock:
                    mismatches.append(index)

        with server:
            threads = [
                threading.Thread(target=one_request, args=(i,))
                for i in range(100)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Stats only after stop() joined the workers — counters are
        # eventually consistent while the server runs.
        stats = server.stats()
        assert mismatches == []
        assert stats.completed == 100
        assert stats.submitted == 100
        assert stats.failed == 0
        # Non-trivial histogram: the barrier makes requests concurrent, so
        # at least some must have coalesced into real batches.
        assert sum(
            size * count for size, count in stats.batch_histogram.items()
        ) == 100
        assert max(stats.batch_histogram) > 1
        assert stats.batches < 100
        assert stats.p99_ms >= stats.p50_ms > 0.0
        # Lock-order check: the instrumentation must actually have seen
        # traffic, and the acquisition graph must be inversion-free.
        assert monitor.acquisitions > 100
        monitor.assert_no_inversions()


class TestLifecycle:
    def test_stop_drains_in_flight_requests(self, square_matrix, rng):
        """Requests queued behind a long max-wait still complete on stop."""
        server = _make_server(max_batch=64, max_wait_s=60.0, max_queue=128)
        entry = server.register("A", square_matrix)
        xs = rng.normal(size=(10, square_matrix.shape[1]))
        server.start()
        futures = [server.submit("A", x) for x in xs]
        server.stop(drain=True)
        for j, future in enumerate(futures):
            got = np.asarray(future.result(timeout=0))
            assert (got == entry.execute(xs[j])).all()
        stats = server.stats()
        assert stats.completed == 10
        assert stats.failed == 0

    def test_stop_without_drain_fails_queued_requests(self, square_matrix, rng):
        server = _make_server(max_batch=64, max_wait_s=60.0, max_queue=128)
        server.register("A", square_matrix)
        # Never started: nothing drains the queue, so the requests are
        # still pending when the server stops.
        futures = [
            server.submit("A", rng.normal(size=square_matrix.shape[1]))
            for _ in range(3)
        ]
        server.stop(drain=False)
        for future in futures:
            with pytest.raises(ServeError, match="stopped"):
                future.result(timeout=0)
        assert server.stats().failed == 3

    def test_stop_is_idempotent_and_restart_rejected(self, square_matrix):
        server = _make_server()
        server.register("A", square_matrix)
        server.start()
        server.stop()
        server.stop()
        with pytest.raises(ServeError, match="restart"):
            server.start()
        with pytest.raises(ServeError, match="not accepting"):
            server.submit("A", np.zeros(square_matrix.shape[1]))

    def test_double_start_rejected(self):
        server = _make_server()
        server.start()
        try:
            with pytest.raises(ServeError, match="already running"):
                server.start()
        finally:
            server.stop()

    def test_invalid_worker_count(self):
        with pytest.raises(ServeError, match="workers"):
            SpmvServer(workers=0)


class TestRequestPath:
    def test_unknown_tenant(self):
        server = _make_server()
        with pytest.raises(ServeError, match="unknown matrix"):
            server.submit("nope", np.zeros(4))

    def test_bad_shape_raises_synchronously(self, square_matrix):
        server = _make_server()
        server.register("A", square_matrix)
        with pytest.raises(HardwareConfigError, match="incompatible"):
            server.submit("A", np.zeros(square_matrix.shape[1] + 3))

    def test_backpressure_counts_rejections(self, square_matrix, rng):
        server = _make_server(max_batch=2, max_wait_s=60.0, max_queue=2)
        server.register("A", square_matrix)
        # Not started: the queue cannot drain, so the third submit must
        # be rejected with QueueFullError.
        for _ in range(2):
            server.submit("A", rng.normal(size=square_matrix.shape[1]))
        with pytest.raises(QueueFullError):
            server.submit("A", rng.normal(size=square_matrix.shape[1]))
        assert server.stats().rejected == 1
        assert server.stats().submitted == 2
        server.stop(drain=False)

    def test_client_many_round_trip(self, square_matrix, rng):
        server = _make_server(max_batch=8, max_wait_s=0.005, max_queue=64)
        entry = server.register("A", square_matrix)
        xs = [rng.normal(size=square_matrix.shape[1]) for _ in range(12)]
        with server:
            ys = SpmvClient(server).spmv_many("A", xs, timeout=30.0)
        for x, y in zip(xs, ys):
            assert (np.asarray(y) == entry.execute(x)).all()

    def test_stats_render_mentions_cache(self, square_matrix):
        server = _make_server()
        server.register("A", square_matrix)
        text = server.stats().render()
        assert "schedule cache" in text
        assert "batches" in text


class TestMetricsContracts:
    """Regression coverage for the serving-metrics satellites."""

    def test_operand_rejection_is_counted(self, square_matrix):
        """A shape-mismatched submit raises HardwareConfigError — and the
        operator-facing rejected counter must see it, exactly like a
        queue-full rejection (it used to count only ServeError)."""
        server = _make_server()
        server.register("A", square_matrix)
        with pytest.raises(HardwareConfigError, match="incompatible"):
            server.submit("A", np.zeros(square_matrix.shape[1] + 3))
        stats = server.stats()
        assert stats.rejected == 1
        assert stats.submitted == 0
        server.stop(drain=False)

    def test_uptime_rebases_on_start(self, square_matrix):
        """Uptime measures serving time: the construction-to-start() gap
        (registration, plan preparation) must not count.  Injected clock
        so the assertion is exact."""
        from repro.serve.metrics import ServerMetrics

        now = {"t": 100.0}
        server = _make_server()
        server.metrics = ServerMetrics(clock=lambda: now["t"])
        server.register("A", square_matrix)
        now["t"] = 160.0  # sixty seconds of setup before serving begins
        server.start()
        now["t"] = 170.0
        try:
            uptime = server.stats().uptime_s
            assert uptime == pytest.approx(10.0)
        finally:
            server.stop()

    def test_mean_batch_size_is_zero_before_any_batch(self, square_matrix):
        """An idle server has no mean batch size; fabricating 1.0 made it
        indistinguishable from one that ran every request unbatched."""
        server = _make_server()
        server.register("A", square_matrix)
        stats = server.stats()
        assert stats.batches == 0
        assert stats.mean_batch_size == 0.0
        assert "mean size 0.00" in stats.render()
        server.stop(drain=False)

    def test_stop_blocks_concurrent_callers_until_workers_exit(
        self, square_matrix, rng, monkeypatch
    ):
        """Every stop() caller — not just the first — must block until the
        workers are joined: "my stop() returned" has to mean "no worker is
        running".  The losing caller used to return immediately off the
        _stopped flag while batches were still in flight."""
        import time

        from repro.serve import server as server_module

        server = _make_server(max_batch=4, max_wait_s=0.005, max_queue=16)
        server.register("A", square_matrix)
        entered = threading.Event()
        release = threading.Event()
        real_run_batch = server_module.run_batch

        def gated_run_batch(entry, batch, faults=None):
            entered.set()
            assert release.wait(timeout=30.0), "test deadlock"
            return real_run_batch(entry, batch, faults)

        monkeypatch.setattr(server_module, "run_batch", gated_run_batch)
        server.start()
        future = server.submit("A", rng.normal(size=square_matrix.shape[1]))
        assert entered.wait(timeout=30.0)

        stoppers = [
            threading.Thread(target=server.stop, name=f"stopper-{i}")
            for i in range(2)
        ]
        for thread in stoppers:
            thread.start()
        # Give the losing stopper ample time to (wrongly) return early:
        # the worker is still parked inside run_batch, so neither call
        # may complete yet.
        time.sleep(0.3)
        assert all(thread.is_alive() for thread in stoppers), (
            "stop() returned while a worker batch was still in flight"
        )
        release.set()
        for thread in stoppers:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in stoppers)
        assert future.result(timeout=5.0) is not None
        assert server.stats().completed == 1


class TestFailureHandling:
    """Fault-injected regression coverage for the robustness layer.

    Every test resolves its futures with bounded timeouts — a hang here
    is exactly the bug the failure model forbids.
    """

    def test_expired_deadline_fails_fast(self, square_matrix, rng):
        """A request whose deadline already passed gets
        DeadlineExceededError without running the kernel."""
        server = _make_server(max_batch=4, max_wait_s=0.001, max_queue=16)
        server.register("A", square_matrix)
        past = server.batcher.clock() - 1.0
        with server:
            future = server.submit(
                "A", rng.normal(size=square_matrix.shape[1]), deadline=past
            )
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=10.0)
        assert server.stats().deadline_expired == 1
        assert server.stats().completed == 0

    def test_worker_crash_respawns_and_keeps_serving(
        self, square_matrix, rng
    ):
        """The first batch dies to an injected worker crash; its future
        gets WorkerCrashedError, the worker respawns in place, and the
        next request completes normally."""
        server = SpmvServer(
            registry=MatrixRegistry(length=16),
            policy=BatchPolicy(max_batch=1, max_wait_s=0.001, max_queue=16),
            workers=1,
            faults=FaultPlan(counts={"worker-crash": 1}),
        )
        entry = server.register("A", square_matrix)
        x = rng.normal(size=square_matrix.shape[1])
        with server:
            doomed = server.submit("A", x)
            with pytest.raises(WorkerCrashedError):
                doomed.result(timeout=10.0)
            healthy = server.submit("A", x)
            got = np.asarray(healthy.result(timeout=10.0))
        assert (got == entry.execute(x)).all()
        stats = server.stats()
        assert stats.workers_respawned == 1
        assert stats.workers_lost == 0
        assert "1 respawned" in stats.render()

    def test_pool_exhaustion_fails_all_pending(self, square_matrix, rng):
        """Past the respawn cap, losing the last worker resolves every
        queued future with ServerStoppedError instead of stranding it."""
        server = SpmvServer(
            registry=MatrixRegistry(length=16),
            policy=BatchPolicy(max_batch=1, max_wait_s=60.0, max_queue=16),
            workers=1,
            max_worker_respawns=0,
            faults=FaultPlan(counts={"worker-crash": 3}),
        )
        server.register("A", square_matrix)
        # Queue three one-request batches before any worker runs.
        futures = [
            server.submit("A", rng.normal(size=square_matrix.shape[1]))
            for _ in range(3)
        ]
        server.start()
        with pytest.raises(WorkerCrashedError):
            futures[0].result(timeout=10.0)
        for future in futures[1:]:
            with pytest.raises(ServerStoppedError, match="exhausted"):
                future.result(timeout=10.0)
        server.stop(drain=False)
        stats = server.stats()
        assert stats.workers_lost == 1
        assert stats.workers_respawned == 0
        assert stats.failed == 3
        assert "1 lost" in stats.render()

    def test_stop_without_drain_resolves_within_one_second(
        self, square_matrix, rng
    ):
        """The shutdown satellite: submit, stop without drain, and every
        pending future resolves (typed) well inside a second."""
        import time

        server = _make_server(max_batch=64, max_wait_s=60.0, max_queue=64)
        server.register("A", square_matrix)
        futures = [
            server.submit("A", rng.normal(size=square_matrix.shape[1]))
            for _ in range(5)
        ]
        server.stop(drain=False)
        begin = time.perf_counter()
        for future in futures:
            with pytest.raises(ServerStoppedError):
                future.result(timeout=1.0)
        assert time.perf_counter() - begin < 1.0
        assert all(future.done() for future in futures)

    def test_circuit_opens_after_kernel_failures_and_rejects(
        self, square_matrix, rng
    ):
        """Consecutive injected kernel failures open the tenant's breaker;
        further submits are refused with CircuitOpenError and counted."""
        from repro.serve.circuit import OPEN, CircuitBoard

        server = SpmvServer(
            registry=MatrixRegistry(length=16),
            policy=BatchPolicy(max_batch=1, max_wait_s=0.001, max_queue=16),
            workers=1,
            circuits=CircuitBoard(failure_threshold=1, reset_after_s=60.0),
            faults=FaultPlan(counts={"kernel-error": 1}),
        )
        server.register("A", square_matrix)
        x = rng.normal(size=square_matrix.shape[1])
        with server:
            doomed = server.submit("A", x)
            with pytest.raises(InjectedFaultError):
                doomed.result(timeout=10.0)
            # The worker resolves the future before reporting to the
            # breaker; give the report a bounded moment to land.
            import time

            deadline = time.perf_counter() + 10.0
            while (
                server.circuits.state_of("A") != OPEN
                and time.perf_counter() < deadline
            ):
                time.sleep(0.001)
            assert server.circuits.state_of("A") == OPEN
            with pytest.raises(CircuitOpenError, match="open"):
                server.submit("A", x)
        stats = server.stats()
        assert stats.circuits.opened == 1
        assert stats.circuits.rejected == 1
        assert stats.rejected == 1
        assert "circuits:" in stats.render()
        assert "unhealthy" in stats.render()

    def test_refused_submit_releases_half_open_probe(
        self, square_matrix, rng
    ):
        """A submit admitted as the half-open probe but refused by the
        batcher (full queue) must give the probe slot back — pre-fix the
        tenant was locked out forever on a probe nobody would report."""
        from repro.serve.circuit import HALF_OPEN, CircuitBoard

        clock = {"t": 0.0}
        board = CircuitBoard(
            failure_threshold=1, reset_after_s=1.0, clock=lambda: clock["t"]
        )
        server = SpmvServer(
            registry=MatrixRegistry(length=16),
            policy=BatchPolicy(max_batch=1, max_wait_s=60.0, max_queue=1),
            circuits=board,
        )
        server.register("A", square_matrix)
        x = rng.normal(size=square_matrix.shape[1])
        # Fill the queue while the breaker is closed (no worker drains:
        # the server is never started).
        server.submit("A", x)
        board.record_failure("A")  # threshold 1: open
        clock["t"] = 1.5  # cooldown elapsed: the next submit is the probe
        with pytest.raises(QueueFullError):
            server.submit("A", x)
        assert board.snapshot().probes_aborted == 1
        # The slot is free again: this check becomes a fresh probe
        # instead of raising "probe in flight".
        board.check("A")
        assert board.state_of("A") == HALF_OPEN
        server.stop(drain=False)

    def test_expired_probe_batch_releases_half_open_slot(
        self, square_matrix, rng
    ):
        """A probe whose whole batch expires before the kernel runs has
        no outcome to report; the worker must release the slot."""
        from repro.serve.batcher import SpmvRequest
        from repro.serve.circuit import HALF_OPEN, CircuitBoard

        clock = {"t": 0.0}
        board = CircuitBoard(
            failure_threshold=1, reset_after_s=60.0, clock=lambda: clock["t"]
        )
        server = SpmvServer(registry=MatrixRegistry(length=16), circuits=board)
        entry = server.register("A", square_matrix)
        board.record_failure("A")
        clock["t"] = 100.0
        board.check("A")  # the probe is admitted...
        request = SpmvRequest(
            x=rng.normal(size=square_matrix.shape[1]), deadline=-1.0
        )
        # ...but expires in the worker's expiry pass, kernel untouched.
        server._run_one(entry, [request])
        with pytest.raises(DeadlineExceededError):
            request.future.result(timeout=1.0)
        board.check("A")  # pre-fix: "probe in flight" forever
        assert board.state_of("A") == HALF_OPEN
        server.stop(drain=False)

    def test_worker_crash_releases_probe_and_tenant_recovers(
        self, square_matrix, rng
    ):
        """A crashed worker holding the probe says nothing about the
        tenant's kernel: the slot is released (not failed), the next
        submit probes again, and its success closes the breaker."""
        from repro.serve.circuit import CLOSED, CircuitBoard

        clock = {"t": 0.0}
        board = CircuitBoard(
            failure_threshold=1, reset_after_s=60.0, clock=lambda: clock["t"]
        )
        server = SpmvServer(
            registry=MatrixRegistry(length=16),
            policy=BatchPolicy(max_batch=1, max_wait_s=0.001, max_queue=16),
            workers=1,
            circuits=board,
            faults=FaultPlan(counts={"worker-crash": 1}),
        )
        entry = server.register("A", square_matrix)
        board.record_failure("A")  # threshold 1: open
        clock["t"] = 100.0  # cooldown elapsed: the next submit probes
        x = rng.normal(size=square_matrix.shape[1])
        with server:
            probe = server.submit("A", x)
            with pytest.raises(WorkerCrashedError):
                probe.result(timeout=10.0)
            # Pre-fix this raised CircuitOpenError ("probe in flight")
            # forever; now the respawned worker serves a fresh probe.
            retry = server.submit("A", x)
            y = retry.result(timeout=10.0)
        assert (np.asarray(y) == entry.execute(x)).all()
        assert board.state_of("A") == CLOSED
        stats = server.stats()
        assert stats.circuits.probes_aborted == 1
        assert stats.workers_respawned == 1


class TestCancelledFutures:
    """Client-side ``Future.cancel()`` must never read as a worker crash.

    ``submit`` hands the raw future to callers, and cancelling a queued
    request succeeds; pre-fix the resulting ``InvalidStateError`` escaped
    the worker, burned a respawn, and enough cancels exhausted the pool.
    """

    def test_expiry_pass_skips_settled_futures(self, square_matrix, rng):
        from repro.serve.batcher import SpmvRequest

        server = _make_server()
        server.register("A", square_matrix)
        cancelled = SpmvRequest(
            x=rng.normal(size=square_matrix.shape[1]), deadline=-1.0
        )
        assert cancelled.future.cancel()
        live = SpmvRequest(x=rng.normal(size=square_matrix.shape[1]))
        remaining = server._expire_requests([cancelled, live])
        assert len(remaining) == 1 and remaining[0] is live
        # The cancelled request is not an expiry — nothing was failed.
        assert server.stats().deadline_expired == 0
        server.stop(drain=False)

    def test_run_batch_tolerates_cancelled_future(self, square_matrix, rng):
        from repro.serve.batcher import SpmvRequest, run_batch

        server = _make_server()
        entry = server.register("A", square_matrix)
        x = rng.normal(size=square_matrix.shape[1])
        cancelled = SpmvRequest(x=rng.normal(size=square_matrix.shape[1]))
        assert cancelled.future.cancel()
        live = SpmvRequest(x=x)
        run_batch(entry, [cancelled, live])
        assert (
            np.asarray(live.future.result(timeout=1.0)) == entry.execute(x)
        ).all()
        assert cancelled.future.cancelled()
        server.stop(drain=False)

    def test_run_batch_error_path_tolerates_cancelled_future(
        self, square_matrix, rng
    ):
        from repro.serve.batcher import SpmvRequest, run_batch

        server = _make_server()
        entry = server.register("A", square_matrix)
        cancelled = SpmvRequest(x=rng.normal(size=square_matrix.shape[1]))
        assert cancelled.future.cancel()
        live = SpmvRequest(x=rng.normal(size=square_matrix.shape[1]))
        with pytest.raises(InjectedFaultError):
            run_batch(
                entry,
                [cancelled, live],
                FaultPlan(counts={"kernel-error": 1}),
            )
        with pytest.raises(InjectedFaultError):
            live.future.result(timeout=1.0)
        assert cancelled.future.cancelled()
        server.stop(drain=False)

    def test_cancelled_requests_burn_no_respawns(self, square_matrix, rng):
        """End-to-end: cancel queued requests, then serve normally — the
        worker must survive the settled futures with its respawn budget
        intact."""
        server = _make_server(max_batch=4, max_wait_s=0.001, max_queue=64)
        entry = server.register("A", square_matrix)
        x = rng.normal(size=square_matrix.shape[1])
        # Enqueue while no worker is draining, so the cancels win the
        # race; the expired deadline routes them through the expiry pass.
        past = server.batcher.clock() - 1.0
        doomed = [server.submit("A", x, deadline=past) for _ in range(4)]
        for future in doomed:
            assert future.cancel()
        with server:
            y = server.submit("A", x).result(timeout=10.0)
        assert (np.asarray(y) == entry.execute(x)).all()
        stats = server.stats()
        assert stats.workers_respawned == 0
        assert stats.workers_lost == 0


class TestClientRetry:
    def test_backoff_retries_queue_full_then_succeeds(
        self, square_matrix, rng, monkeypatch
    ):
        """QueueFullError is retriable: the client backs off and resubmits
        instead of surfacing transient backpressure to the caller."""
        server = _make_server(max_batch=8, max_wait_s=0.001, max_queue=64)
        entry = server.register("A", square_matrix)
        real_submit = server.submit
        calls = {"n": 0}

        def flaky_submit(name, x, deadline=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise QueueFullError("synthetic backpressure")
            return real_submit(name, x, deadline=deadline)

        monkeypatch.setattr(server, "submit", flaky_submit)
        x = rng.normal(size=square_matrix.shape[1])
        with server:
            y = SpmvClient(server).spmv(
                "A", x, timeout=30.0, retries=5, backoff_s=0.0001
            )
        assert calls["n"] == 3
        assert (np.asarray(y) == entry.execute(x)).all()

    def test_retries_exhausted_reraises_queue_full(self, square_matrix, rng):
        """A queue that never drains (server not started) surfaces
        QueueFullError once the retry budget is spent."""
        server = _make_server(max_batch=2, max_wait_s=60.0, max_queue=2)
        server.register("A", square_matrix)
        client = SpmvClient(server)
        for _ in range(2):
            server.submit("A", rng.normal(size=square_matrix.shape[1]))
        with pytest.raises(QueueFullError):
            client.spmv(
                "A",
                rng.normal(size=square_matrix.shape[1]),
                retries=3,
                backoff_s=0.0001,
            )
        server.stop(drain=False)

    def test_timeout_bounds_total_wait(self, square_matrix, rng):
        """timeout= caps the whole call — retries included — so a stalled
        server cannot hold the client past its budget."""
        from concurrent.futures import TimeoutError as FutureTimeoutError

        server = _make_server(max_batch=2, max_wait_s=60.0, max_queue=16)
        server.register("A", square_matrix)
        client = SpmvClient(server)
        # Not started: the future can never resolve.
        with pytest.raises(FutureTimeoutError):
            client.spmv(
                "A", rng.normal(size=square_matrix.shape[1]), timeout=0.05
            )
        server.stop(drain=False)
