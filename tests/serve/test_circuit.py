"""CircuitBoard unit tests: state machine, probe gating, counters.

All use an injected clock, so no test sleeps.
"""

import pytest

from repro import CircuitBoard
from repro.errors import CircuitOpenError, HardwareConfigError
from repro.serve.circuit import CLOSED, HALF_OPEN, OPEN


@pytest.fixture
def clock():
    return {"t": 0.0}


@pytest.fixture
def board(clock):
    return CircuitBoard(
        failure_threshold=3, reset_after_s=1.0, clock=lambda: clock["t"]
    )


def trip(board, name="A", times=3):
    for _ in range(times):
        board.record_failure(name)


class TestStateMachine:
    def test_closed_until_threshold(self, board):
        board.check("A")  # untouched tenant admits
        trip(board, times=2)
        assert board.state_of("A") == CLOSED
        board.check("A")  # still admitting below threshold
        board.record_failure("A")
        assert board.state_of("A") == OPEN

    def test_success_resets_consecutive_count(self, board):
        trip(board, times=2)
        board.record_success("A")
        trip(board, times=2)
        # Never three *consecutive* failures -> still closed.
        assert board.state_of("A") == CLOSED

    def test_open_rejects_until_cooldown(self, board, clock):
        trip(board)
        with pytest.raises(CircuitOpenError, match="is open"):
            board.check("A")
        clock["t"] = 0.999
        with pytest.raises(CircuitOpenError, match="is open"):
            board.check("A")
        assert board.snapshot().rejected == 2

    def test_cooldown_admits_single_probe(self, board, clock):
        trip(board)
        clock["t"] = 1.5
        board.check("A")  # this call is the probe
        assert board.state_of("A") == HALF_OPEN
        # A second concurrent submit must not ride along with the probe.
        with pytest.raises(CircuitOpenError, match="probe in flight"):
            board.check("A")

    def test_probe_success_closes(self, board, clock):
        trip(board)
        clock["t"] = 1.5
        board.check("A")
        board.record_success("A")
        assert board.state_of("A") == CLOSED
        board.check("A")  # healthy again: admits freely
        snap = board.snapshot()
        assert (snap.opened, snap.half_opened, snap.closed) == (1, 1, 1)

    def test_probe_failure_reopens_and_rearms_cooldown(self, board, clock):
        trip(board)
        clock["t"] = 1.5
        board.check("A")
        board.record_failure("A")  # the probe failed
        assert board.state_of("A") == OPEN
        clock["t"] = 2.0  # only 0.5s since reopening at t=1.5
        with pytest.raises(CircuitOpenError, match="is open"):
            board.check("A")
        clock["t"] = 2.6
        board.check("A")
        assert board.state_of("A") == HALF_OPEN

    def test_tenants_are_independent(self, board):
        trip(board, name="A")
        board.check("B")  # B is unaffected by A's open breaker
        assert board.snapshot().states == {"A": OPEN}


class TestProbeRelease:
    """A probe that never reaches the kernel must not wedge the tenant."""

    def half_open(self, board, clock, name="A"):
        trip(board, name=name)
        clock["t"] += 1.5
        board.check(name)  # admitted as the probe
        assert board.state_of(name) == HALF_OPEN

    def test_abort_probe_frees_the_slot(self, board, clock):
        self.half_open(board, clock)
        board.abort_probe("A")
        # Regression: without the abort this next check raised
        # "probe in flight" forever.
        board.check("A")  # becomes the new probe
        board.record_success("A")
        assert board.state_of("A") == CLOSED
        assert board.snapshot().probes_aborted == 1

    def test_abort_probe_is_noop_without_probe(self, board):
        board.abort_probe("never-seen")
        board.record_failure("A")
        board.abort_probe("A")  # closed, no probe in flight
        snap = board.snapshot()
        assert snap.probes_aborted == 0
        assert "never-seen" not in snap.states

    def test_stale_probe_is_reclaimed_after_cooldown(self, board, clock):
        self.half_open(board, clock)
        # The probe's outcome is never reported (crashed worker, dropped
        # queue).  Within the cooldown concurrent submits still refuse...
        clock["t"] += 0.5
        with pytest.raises(CircuitOpenError, match="probe in flight"):
            board.check("A")
        # ...but once it outlives reset_after_s the slot is presumed lost
        # and the next submit takes over as the probe.
        clock["t"] += 0.6
        board.check("A")
        board.record_success("A")
        assert board.state_of("A") == CLOSED
        snap = board.snapshot()
        assert snap.probes_reclaimed == 1
        # The single in-cooldown check above is the only rejection.
        assert snap.rejected == 1

    def test_reclaimed_probe_failure_reopens(self, board, clock):
        self.half_open(board, clock)
        clock["t"] += 1.1
        board.check("A")  # reclaims the stale probe
        board.record_failure("A")
        assert board.state_of("A") == OPEN


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(HardwareConfigError, match="failure_threshold"):
            CircuitBoard(failure_threshold=0)

    def test_bad_cooldown(self):
        with pytest.raises(HardwareConfigError, match="reset_after_s"):
            CircuitBoard(reset_after_s=-1.0)
