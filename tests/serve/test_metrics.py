"""ServerStats golden render, bounded reservoir, Prometheus scrape."""

import numpy as np
import pytest

from repro import BatchPolicy, MatrixRegistry, SpmvClient, SpmvServer
from repro import uniform_random
from repro.core.cache import CacheStats
from repro.obs.metrics import MetricsRegistry
from repro.serve.circuit import CircuitSnapshot
from repro.serve.metrics import (
    LATENCY_RESERVOIR,
    ServerMetrics,
    ServerStats,
)

pytestmark = pytest.mark.usefixtures("no_faults")


def _stats(**overrides) -> ServerStats:
    base = dict(
        submitted=10,
        completed=8,
        rejected=1,
        failed=1,
        batches=3,
        batch_histogram={4: 1, 2: 2},
        p50_ms=1.5,
        p99_ms=3.25,
        uptime_s=2.0,
        cache=CacheStats(hits=3, refreshes=1, misses=2, disk_hits=1),
        deadline_expired=1,
        workers_respawned=1,
        workers_lost=0,
        circuits=CircuitSnapshot(
            states={"A": "open", "B": "closed"},
            opened=2,
            half_opened=1,
            closed=1,
            rejected=4,
            probes_aborted=1,
            probes_reclaimed=0,
        ),
    )
    base.update(overrides)
    return ServerStats(**base)


class TestRenderGolden:
    def test_full_report_is_stable(self):
        expected = (
            "serving stats:\n"
            "  requests: 10 submitted, 8 completed, 1 rejected, 1 failed,"
            " 1 deadline-expired\n"
            "  batches:  3 (mean size 2.67)\n"
            "  batch histogram (size x batches): 2x2, 4x1\n"
            "  latency:  p50 1.500 ms, p99 3.250 ms\n"
            "  throughput: 4 req/s over 2.00 s\n"
            "  schedule cache: 3 hits, 1 refreshes, 2 misses"
            " (hit rate 67%; disk 1 hits)\n"
            "  workers:  1 respawned, 0 lost\n"
            "  circuits: 2 opened, 1 half-opened, 1 closed, 4 rejected,"
            " 1 probe-aborts, 0 probe-reclaims; unhealthy: A"
        )
        assert _stats().render() == expected

    def test_idle_server_renders_without_histogram_line(self):
        stats = _stats(
            batches=0,
            batch_histogram={},
            completed=0,
            circuits=CircuitSnapshot(states={}),
        )
        rendered = stats.render()
        assert "batch histogram" not in rendered
        assert "(mean size 0.00)" in rendered
        assert "unhealthy" not in rendered


class TestLatencyReservoir:
    def test_reservoir_stays_bounded_past_capacity(self):
        """Regression: sustained traffic must not grow latency memory.

        Feed well over the reservoir capacity and check both the bound
        and that percentiles reflect the *recent* window (the early
        500 ms outliers must have been evicted)."""
        metrics = ServerMetrics()
        chunk = LATENCY_RESERVOIR // 2
        metrics.record_batch(chunk, [0.5] * chunk)
        metrics.record_batch(chunk, [0.001] * chunk)
        metrics.record_batch(chunk, [0.002] * chunk)
        metrics.record_batch(chunk, [0.001] * chunk)
        assert len(metrics._latencies) == LATENCY_RESERVOIR
        assert metrics._latencies.maxlen == LATENCY_RESERVOIR
        stats = metrics.snapshot()
        assert stats.completed == 4 * chunk  # counters keep full totals
        assert 0.9 <= stats.p50_ms <= 2.1
        assert stats.p50_ms <= stats.p99_ms <= 2.5

    def test_registry_histograms_observe_at_record_time(self):
        registry = MetricsRegistry()
        metrics = ServerMetrics(registry=registry)
        metrics.record_batch(3, [0.01, 0.02, 0.03])
        latency = registry.histogram("gust_request_latency_seconds")
        batch = registry.histogram("gust_batch_size")
        assert latency.snapshot()["count"] == 3
        assert latency.snapshot()["sum"] == pytest.approx(0.06)
        assert batch.snapshot()["count"] == 1
        assert batch.snapshot()["buckets"][4.0] == 1


class TestPrometheusScrape:
    def test_one_scrape_covers_every_subsystem(self):
        """The ISSUE acceptance: a single /metrics-equivalent scrape
        carries latency quantiles, the batch-size histogram, cache tier
        hit rates, circuit states, and fault-decision counters."""
        registry = MetricsRegistry()
        server = SpmvServer(
            registry=MatrixRegistry(length=16),
            policy=BatchPolicy(max_batch=8, max_wait_s=0.005),
            metrics_registry=registry,
        )
        matrix = uniform_random(48, 48, 0.1, seed=3)
        server.register("demo", matrix)
        rng = np.random.default_rng(0)
        with server:
            client = SpmvClient(server)
            for _ in range(12):
                client.spmv("demo", rng.normal(size=48), timeout=30.0)
        scrape = registry.render_prometheus()
        assert 'gust_requests_total{state="completed"} 12' in scrape
        for needle in (
            'gust_request_latency_quantile_seconds{quantile="0.5"}',
            'gust_request_latency_quantile_seconds{quantile="0.99"}',
            'gust_batch_size_bucket{le="+Inf"} ',
            'gust_request_latency_seconds_count ',
            'gust_cache_hit_rate{tier="memory"}',
            'gust_cache_hit_rate{tier="disk"}',
            'gust_cache_hit_rate{tier="overall"}',
            'gust_cache_events_total{event="miss"} 1',
            'gust_circuit_state{tenant="demo"} 0',
            'gust_circuit_events_total{event="opened"} 0',
            'gust_fault_probes_total{site="kernel-error"}',
            'gust_faults_fired_total{site="kernel-error"} 0',
            "gust_uptime_seconds ",
        ):
            assert needle in scrape, f"scrape missing {needle}"
        # Second scrape still renders (collectors are re-entrant after
        # the server stopped) and stays a superset of the schema.
        assert "gust_batches_total" in registry.render_prometheus()
