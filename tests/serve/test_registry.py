"""Tests for the serving tenant registry."""

import numpy as np
import pytest

from repro import MatrixRegistry, uniform_random

# Exact store/cache/validation counter assertions: opt out of the
# ambient GUST_FAULTS plan the fault-injection CI leg installs.
pytestmark = pytest.mark.usefixtures("no_faults")
from repro.core.store import DiskScheduleStore
from repro.errors import ServeError


@pytest.fixture
def registry() -> MatrixRegistry:
    return MatrixRegistry(length=16)


class TestRegistration:
    def test_register_and_get(self, registry, small_matrix):
        entry = registry.register("A", small_matrix)
        assert registry.get("A") is entry
        assert entry.shape == small_matrix.shape
        assert "A" in registry
        assert registry.names() == ["A"]
        assert len(registry) == 1

    def test_duplicate_name_rejected(self, registry, small_matrix):
        registry.register("A", small_matrix)
        with pytest.raises(ServeError, match="already registered"):
            registry.register("A", small_matrix)

    def test_replace_swaps_entry(self, registry, small_matrix, square_matrix):
        first = registry.register("A", small_matrix)
        second = registry.register("A", square_matrix, replace=True)
        assert registry.get("A") is second
        assert second is not first

    def test_unknown_name(self, registry):
        with pytest.raises(ServeError, match="unknown matrix"):
            registry.get("nope")
        with pytest.raises(ServeError, match="unknown matrix"):
            registry.unregister("nope")

    def test_unregister(self, registry, small_matrix):
        registry.register("A", small_matrix)
        registry.unregister("A")
        assert "A" not in registry

    def test_per_tenant_overrides(self, registry, square_matrix):
        entry = registry.register(
            "naive", square_matrix, length=8, algorithm="naive"
        )
        assert entry.pipeline.length == 8
        assert entry.pipeline.algorithm == "naive"


class TestPinnedPlan:
    def test_entry_execution_matches_oracle(self, registry, square_matrix, rng):
        entry = registry.register("A", square_matrix)
        x = rng.normal(size=square_matrix.shape[1])
        assert np.allclose(entry.execute(x), square_matrix.matvec(x))

    def test_plan_is_pinned_and_memoized(self, registry, square_matrix):
        entry = registry.register("A", square_matrix)
        assert entry.pipeline.plan_for(
            entry.schedule, entry.balanced
        ) is entry.plan

    def test_backend_override(self, registry, square_matrix):
        entry = registry.register(
            "np", square_matrix, force_numpy_backend=True
        )
        assert entry.stacked.backend == "bincount"


class TestSharedCacheTiers:
    def test_same_pattern_second_tenant_hits_cache(self, small_matrix):
        registry = MatrixRegistry(length=16)
        registry.register("A", small_matrix)
        entry = registry.register("B", small_matrix)
        assert entry.preprocess.notes["cache_hit"] == 1.0
        assert registry.cache_stats.hits == 1

    def test_value_refresh_on_reregister(self, small_matrix, rng):
        registry = MatrixRegistry(length=16)
        registry.register("A", small_matrix)
        refreshed = small_matrix.with_data(rng.normal(size=small_matrix.nnz))
        entry = registry.register("A", refreshed, replace=True)
        assert entry.preprocess.notes["cache_refresh"] == 1.0
        x = rng.normal(size=small_matrix.shape[1])
        assert np.allclose(entry.execute(x), refreshed.matvec(x))

    def test_disk_store_warm_starts_new_registry(self, tmp_path, small_matrix):
        store_dir = tmp_path / "store"
        first = MatrixRegistry(length=16, store=DiskScheduleStore(store_dir))
        first.register("A", small_matrix)
        second = MatrixRegistry(length=16, store=DiskScheduleStore(store_dir))
        entry = second.register("A", small_matrix)
        assert entry.preprocess.notes["disk_hit"] == 1.0
