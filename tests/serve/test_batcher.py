"""Batcher edge cases: admission, flush, interleaving, bit-identity."""

import time

import numpy as np
import pytest

from repro import GustPipeline, MatrixRegistry, uniform_random
from repro.errors import HardwareConfigError, QueueFullError, ServeError
from repro.serve.batcher import (
    BatchPolicy,
    RequestBatcher,
    SpmvRequest,
    run_batch,
)


@pytest.fixture
def registry() -> MatrixRegistry:
    return MatrixRegistry(length=16)


@pytest.fixture
def entry(registry, square_matrix):
    return registry.register("A", square_matrix)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(HardwareConfigError, match="max_batch"):
            BatchPolicy(max_batch=0)
        with pytest.raises(HardwareConfigError, match="max_wait_s"):
            BatchPolicy(max_wait_s=-1.0)
        with pytest.raises(HardwareConfigError, match="max_queue"):
            BatchPolicy(max_batch=8, max_queue=4)


class TestRunBatch:
    def test_batch_of_one_bit_identical_to_pipeline_execute(
        self, entry, square_matrix, rng
    ):
        """A batch of 1 must reproduce GustPipeline.execute exactly."""
        pipeline = GustPipeline(16)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        x = rng.normal(size=square_matrix.shape[1])
        request = SpmvRequest(x=np.asarray(x, dtype=np.float64))
        run_batch(entry, [request])
        got = np.asarray(request.future.result(timeout=0))
        want = pipeline.execute(schedule, balanced, x)
        assert (got == want).all()

    def test_every_batch_size_bit_identical(self, entry, rng):
        n = entry.shape[1]
        for size in (1, 2, 3, 8, 13):
            xs = rng.normal(size=(size, n))
            batch = [SpmvRequest(x=x) for x in xs]
            run_batch(entry, batch)
            for j, request in enumerate(batch):
                got = np.asarray(request.future.result(timeout=0))
                assert (got == entry.execute(xs[j])).all()

    def test_numpy_backend_bit_identical(self, registry, square_matrix, rng):
        entry = registry.register(
            "np", square_matrix, force_numpy_backend=True
        )
        xs = rng.normal(size=(5, entry.shape[1]))
        batch = [SpmvRequest(x=x) for x in xs]
        run_batch(entry, batch)
        for j, request in enumerate(batch):
            got = np.asarray(request.future.result(timeout=0))
            assert (got == entry.execute(xs[j])).all()


class TestAdmission:
    def test_queue_full_rejection(self, entry, rng):
        batcher = RequestBatcher(BatchPolicy(max_batch=2, max_queue=3))
        batcher.bind(entry)
        x = rng.normal(size=entry.shape[1])
        for _ in range(3):
            batcher.submit(entry, x)
        with pytest.raises(QueueFullError, match="capacity"):
            batcher.submit(entry, x)
        assert batcher.pending() == 3

    def test_shape_validated_synchronously(self, entry):
        batcher = RequestBatcher()
        with pytest.raises(HardwareConfigError, match="incompatible"):
            batcher.submit(entry, np.zeros(entry.shape[1] + 1))
        assert batcher.pending() == 0

    def test_submit_after_close_rejected(self, entry, rng):
        batcher = RequestBatcher()
        batcher.close()
        with pytest.raises(ServeError, match="not accepting"):
            batcher.submit(entry, rng.normal(size=entry.shape[1]))


class TestFlush:
    def test_full_batch_flushes_immediately(self, entry, rng):
        batcher = RequestBatcher(
            BatchPolicy(max_batch=4, max_wait_s=60.0, max_queue=64)
        )
        batcher.bind(entry)
        for _ in range(6):
            batcher.submit(entry, rng.normal(size=entry.shape[1]))
        got_entry, batch = batcher.take_batch()
        assert got_entry is entry
        # Despite the one-minute max-wait, a full batch drains at once —
        # and is capped at max_batch even though 6 requests are queued.
        assert len(batch) == 4
        assert batcher.pending() == 2

    def test_partial_batch_flushes_on_max_wait(self, entry, rng):
        batcher = RequestBatcher(
            BatchPolicy(max_batch=8, max_wait_s=0.05, max_queue=64)
        )
        batcher.bind(entry)
        for _ in range(3):
            batcher.submit(entry, rng.normal(size=entry.shape[1]))
        started = time.perf_counter()
        _, batch = batcher.take_batch()
        waited = time.perf_counter() - started
        assert len(batch) == 3
        assert waited >= 0.04

    def test_mixed_matrix_interleaving(self, registry, rng):
        """Interleaved tenants never share a batch; FIFO across tenants."""
        a = registry.register("A", uniform_random(40, 40, 0.1, seed=1))
        b = registry.register("B", uniform_random(30, 30, 0.1, seed=2))
        batcher = RequestBatcher(
            BatchPolicy(max_batch=8, max_wait_s=0.0, max_queue=64)
        )
        xs = {}
        for name, entry in (("A", a), ("B", b)):
            batcher.bind(entry)
            xs[name] = rng.normal(size=(3, entry.shape[1]))
        for j in range(3):  # interleave: A B A B A B
            batcher.submit(a, xs["A"][j])
            batcher.submit(b, xs["B"][j])
        first_entry, first = batcher.take_batch()
        second_entry, second = batcher.take_batch()
        # Oldest head first: A was submitted before B.
        assert first_entry is a and second_entry is b
        assert len(first) == 3 and len(second) == 3
        for entry, batch, name in ((a, first, "A"), (b, second, "B")):
            run_batch(entry, batch)
            for j, request in enumerate(batch):
                got = np.asarray(request.future.result(timeout=0))
                assert (got == entry.execute(xs[name][j])).all()


class TestShutdown:
    def test_drain_makes_partial_batches_immediate(self, entry, rng):
        batcher = RequestBatcher(
            BatchPolicy(max_batch=8, max_wait_s=60.0, max_queue=64)
        )
        batcher.bind(entry)
        for _ in range(3):
            batcher.submit(entry, rng.normal(size=entry.shape[1]))
        abandoned = batcher.close(drain=True)
        assert abandoned == []
        _, batch = batcher.take_batch()
        assert len(batch) == 3
        assert batcher.take_batch() is None  # shut down, queues empty

    def test_close_without_drain_returns_abandoned(self, entry, rng):
        batcher = RequestBatcher()
        batcher.bind(entry)
        for _ in range(2):
            batcher.submit(entry, rng.normal(size=entry.shape[1]))
        abandoned = batcher.close(drain=False)
        assert len(abandoned) == 2
        assert batcher.take_batch() is None


class TestInjectedClock:
    """Deadline arithmetic in the flush scan, pinned with a fake clock.

    ``take_batch``'s wait loop depends on two ``_scan`` invariants: the
    returned deadline is the *earliest* pending max-wait flush across all
    queues, and it is always strictly in the future (an overdue head is
    drainable, so a zero or negative wait timeout — a busy-spin — can
    never be computed).
    """

    def _batcher(self, now, **policy_kwargs):
        return RequestBatcher(
            BatchPolicy(**policy_kwargs), clock=lambda: now["t"]
        )

    def test_scan_reports_earliest_pending_deadline(self, registry, rng):
        a = registry.register("A", uniform_random(48, 48, 0.1, seed=1))
        b = registry.register("B", uniform_random(32, 32, 0.1, seed=2))
        now = {"t": 100.0}
        batcher = self._batcher(
            now, max_batch=8, max_wait_s=1.0, max_queue=64
        )
        batcher.submit(a, rng.normal(size=a.shape[1]))
        now["t"] = 100.4
        batcher.submit(b, rng.normal(size=b.shape[1]))
        with batcher._cond:
            name, deadline = batcher._scan(now["t"])
        # Nothing drainable yet; A's head (enqueued first) is due first.
        assert name is None
        assert deadline == pytest.approx(101.0)
        assert deadline > now["t"]  # the wait timeout stays positive

    def test_scan_drains_queue_once_head_is_due(self, entry, rng):
        now = {"t": 100.0}
        batcher = self._batcher(
            now, max_batch=8, max_wait_s=1.0, max_queue=64
        )
        batcher.submit(entry, rng.normal(size=entry.shape[1]))
        with batcher._cond:
            assert batcher._scan(100.999) == (None, pytest.approx(101.0))
            # At (and past) the deadline the queue is drainable — _scan
            # switches from "wait until" to "take now", so an overdue
            # head can never produce a non-positive wait timeout.
            assert batcher._scan(101.0) == ("A", None)
            assert batcher._scan(999.0) == ("A", None)

    def test_take_batch_flushes_on_the_injected_clock(self, entry, rng):
        """Once the fake clock passes the max-wait deadline, take_batch
        returns the partial batch immediately — no real-time sleep."""
        import time as real_time

        now = {"t": 100.0}
        batcher = self._batcher(
            now, max_batch=8, max_wait_s=1.0, max_queue=64
        )
        batcher.submit(entry, rng.normal(size=entry.shape[1]))
        now["t"] = 101.5  # past the flush deadline before the scan runs
        begin = real_time.perf_counter()
        taken_entry, batch = batcher.take_batch()
        assert real_time.perf_counter() - begin < 1.0
        assert taken_entry is entry
        assert len(batch) == 1

    def test_zero_max_wait_flushes_immediately_without_spinning(
        self, entry, rng
    ):
        """max_wait_s=0 makes every head instantly due; the scan must
        classify it drainable rather than computing a zero timeout."""
        now = {"t": 100.0}
        batcher = self._batcher(
            now, max_batch=8, max_wait_s=0.0, max_queue=64
        )
        batcher.submit(entry, rng.normal(size=entry.shape[1]))
        with batcher._cond:
            assert batcher._scan(now["t"]) == ("A", None)

    def test_request_records_enqueue_instant_and_absolute_deadline(
        self, entry, rng
    ):
        now = {"t": 100.0}
        batcher = self._batcher(
            now, max_batch=8, max_wait_s=60.0, max_queue=64
        )
        batcher.submit(entry, rng.normal(size=entry.shape[1]), deadline=123.4)
        now["t"] = 160.0
        with batcher._cond:
            request = batcher._queues["A"][0]
        assert request.enqueued == 100.0  # stamped at submit time
        assert request.deadline == 123.4  # absolute, not relative
