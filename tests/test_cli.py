"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main

# Exact store/cache/validation counter assertions: opt out of the
# ambient GUST_FAULTS plan the fault-injection CI leg installs.
pytestmark = pytest.mark.usefixtures("no_faults")
from repro.sparse.mmio import read_matrix_market, write_matrix_market


@pytest.fixture
def matrix_file(tmp_path, small_matrix):
    path = tmp_path / "m.mtx"
    write_matrix_market(small_matrix, path)
    return path


class TestGenerate:
    def test_uniform(self, tmp_path, capsys):
        out = tmp_path / "u.mtx"
        code = main(
            [
                "generate", "--family", "uniform", "--dim", "64",
                "--density", "0.05", "--out", str(out),
            ]
        )
        assert code == 0
        matrix = read_matrix_market(out)
        assert matrix.shape == (64, 64)
        assert "wrote" in capsys.readouterr().out

    def test_dataset_surrogate(self, tmp_path, capsys):
        out = tmp_path / "d.mtx"
        code = main(
            [
                "generate", "--dataset", "wiki-Vote", "--scale", "64",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert read_matrix_market(out).nnz > 0

    def test_k_regular(self, tmp_path):
        out = tmp_path / "k.mtx"
        code = main(
            [
                "generate", "--family", "k_regular", "--dim", "32",
                "--k", "3", "--out", str(out),
            ]
        )
        assert code == 0
        assert (read_matrix_market(out).row_counts() == 3).all()


class TestScheduleAndSpmv:
    def test_schedule_then_spmv(self, matrix_file, tmp_path, capsys):
        sched = tmp_path / "m.sched"
        code = main(
            ["schedule", str(matrix_file), "--length", "16", "--out", str(sched)]
        )
        assert code == 0
        assert "utilization" in capsys.readouterr().out

        code = main(["spmv", str(sched), "--seed", "3"])
        assert code == 0
        assert "verified=True" in capsys.readouterr().out

    def test_spmv_backend_flag(self, matrix_file, tmp_path, capsys):
        sched = tmp_path / "m.sched"
        main(["schedule", str(matrix_file), "--length", "16", "--out", str(sched)])
        capsys.readouterr()
        for backend in ("bincount", "legacy-scatter"):
            code = main(["spmv", str(sched), "--backend", backend])
            out = capsys.readouterr().out
            assert code == 0
            assert f"backend: {backend}" in out
            assert "verified=True" in out

    def test_spmv_unknown_backend_errors(self, matrix_file, tmp_path, capsys):
        sched = tmp_path / "m.sched"
        main(["schedule", str(matrix_file), "--length", "16", "--out", str(sched)])
        capsys.readouterr()
        code = main(["spmv", str(sched), "--backend", "gpu"])
        assert code == 1
        assert "unknown backend" in capsys.readouterr().err

    def test_spmv_cycle_accurate(self, matrix_file, tmp_path, capsys):
        sched = tmp_path / "m.sched"
        main(["schedule", str(matrix_file), "--length", "16", "--out", str(sched)])
        capsys.readouterr()
        code = main(["spmv", str(sched), "--cycle-accurate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "machine run" in out
        assert "verified=True" in out

    def test_inspect(self, matrix_file, tmp_path, capsys):
        sched = tmp_path / "m.sched"
        main(["schedule", str(matrix_file), "--length", "16", "--out", str(sched)])
        capsys.readouterr()
        code = main(["inspect", str(sched)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles/SpMV" in out
        assert "window colors" in out

    def test_naive_algorithm(self, matrix_file, tmp_path, capsys):
        sched = tmp_path / "naive.sched"
        code = main(
            [
                "schedule", str(matrix_file), "--length", "16",
                "--algorithm", "naive", "--out", str(sched),
            ]
        )
        assert code == 0
        assert "naive" in capsys.readouterr().out


class TestPersistentCache:
    def test_second_run_warm_starts_from_disk(
        self, matrix_file, tmp_path, capsys
    ):
        """Two CLI invocations sharing --cache-dir model two worker
        processes: the second must report a disk hit, not a cold pass."""
        cache_dir = tmp_path / "store"
        argv = [
            "schedule", str(matrix_file), "--length", "16",
            "--out", str(tmp_path / "a.sched"), "--cache-dir", str(cache_dir),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "(cold)" in first
        assert "1 writes" in first

        argv[5] = str(tmp_path / "b.sched")
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "(disk hit)" in second
        assert "disk: 1 hits" in second

    def test_default_store_honors_gust_cache_dir_env(
        self, matrix_file, tmp_path, capsys, monkeypatch
    ):
        target = tmp_path / "env-store"
        monkeypatch.setenv("GUST_CACHE_DIR", str(target))
        code = main(
            [
                "schedule", str(matrix_file), "--length", "16",
                "--out", str(tmp_path / "s.sched"),
            ]
        )
        assert code == 0
        assert target.is_dir()
        assert any(p.suffix == ".sched" for p in target.iterdir())

    def test_no_disk_cache_writes_nothing(
        self, matrix_file, tmp_path, capsys, monkeypatch
    ):
        target = tmp_path / "untouched"
        monkeypatch.setenv("GUST_CACHE_DIR", str(target))
        code = main(
            [
                "schedule", str(matrix_file), "--length", "16",
                "--out", str(tmp_path / "s.sched"), "--no-disk-cache",
            ]
        )
        assert code == 0
        assert not target.exists()
        assert "disk:" not in capsys.readouterr().out

    def test_repeats_report_memory_hits_over_disk(
        self, matrix_file, tmp_path, capsys
    ):
        code = main(
            [
                "schedule", str(matrix_file), "--length", "16",
                "--out", str(tmp_path / "r.sched"),
                "--cache-dir", str(tmp_path / "store"), "--repeats", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("(hit)") == 2, "repeats are memory hits, not disk"

    def test_cache_stats_and_clear(self, matrix_file, tmp_path, capsys):
        cache_dir = tmp_path / "store"
        main(
            [
                "schedule", str(matrix_file), "--length", "16",
                "--out", str(tmp_path / "s.sched"),
                "--cache-dir", str(cache_dir),
            ]
        )
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 artifacts" in out
        assert str(cache_dir) in out

        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "cleared 1 artifacts" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "0 artifacts" in capsys.readouterr().out


class TestCompare:
    def test_compare_table(self, matrix_file, capsys):
        code = main(["compare", str(matrix_file), "--length", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GUST-EC/LB" in out
        assert "1D" in out
        assert "Serpens" in out


class TestBackendsCommand:
    def test_lists_backends_and_verdicts(self, capsys):
        code = main(["backends", "--dim", "64"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("scatter", "bincount", "reduceat"):
            assert name in out
        assert "auto selects:" in out
        assert "allclose only" in out  # reduceat's verdict
        assert "PROBE FAILED" not in out


class TestExperiment:
    def test_known_experiment(self, capsys):
        code = main(["experiment", "table5"])
        assert code == 0
        assert "crossbar" in capsys.readouterr().out.lower()

    def test_unknown_experiment(self, capsys):
        code = main(["experiment", "fig99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestJobsFlag:
    def test_schedule_jobs_byte_identical(self, matrix_file, tmp_path, capsys):
        """--jobs 2 is a throughput knob only: the written schedule must be
        byte-identical to the serial one."""
        serial = tmp_path / "serial.sched"
        pooled = tmp_path / "pooled.sched"
        assert main(
            ["schedule", str(matrix_file), "--length", "16",
             "--out", str(serial)]
        ) == 0
        assert main(
            ["schedule", str(matrix_file), "--length", "16",
             "--jobs", "2", "--out", str(pooled)]
        ) == 0
        capsys.readouterr()
        assert pooled.read_bytes() == serial.read_bytes()

    def test_schedule_jobs_invalid(self, matrix_file, tmp_path, capsys):
        code = main(
            ["schedule", str(matrix_file), "--length", "16",
             "--jobs", "0", "--out", str(tmp_path / "x.sched")]
        )
        assert code == 2
        assert "--jobs" in capsys.readouterr().err


class TestErrors:
    def test_missing_file(self, capsys):
        code = main(["schedule", "no_such.mtx", "--out", "x.sched"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_generate_args(self, tmp_path, capsys):
        out = tmp_path / "bad.mtx"
        code = main(
            [
                "generate", "--family", "uniform", "--dim", "16",
                "--density", "2.0", "--out", str(out),
            ]
        )
        assert code == 1


class TestServe:
    def test_serve_synthetic_tenants(self, capsys):
        code = main(
            [
                "serve", "--tenants", "2", "--clients", "4",
                "--requests", "24", "--dim", "96", "--density", "0.05",
                "--length", "16", "--max-wait-ms", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verified=True" in out
        assert "batch histogram" in out
        assert "registered tenant0" in out

    def test_serve_matrix_file(self, matrix_file, capsys):
        code = main(
            [
                "serve", "--matrix", str(matrix_file), "--clients", "2",
                "--requests", "10", "--length", "16",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verified=True" in out

    def test_serve_rejects_bad_request_count(self, capsys):
        code = main(["serve", "--requests", "0"])
        assert code == 2
        assert "must be >= 1" in capsys.readouterr().err


class TestObservability:
    def test_stats_local_workload_prints_prometheus(self, capsys):
        code = main(["stats", "--dim", "64", "--requests", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE gust_requests_total counter" in out
        assert "gust_batch_size_bucket" in out
        assert out.rstrip().startswith("# ")

    def test_stats_json_parses(self, capsys):
        import json

        code = main(["stats", "--json", "--dim", "64", "--requests", "8"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gust_requests_total"]["type"] == "counter"

    def test_stats_unreachable_url_exits_one(self, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = main(["stats", "--url", f"http://127.0.0.1:{free_port}"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_trace_export_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        code = main(
            ["trace", "export", "--out", str(out), "--dim", "64",
             "--length", "16"]
        )
        assert code == 0
        assert "trace events" in capsys.readouterr().out
        events = json.loads(out.read_text())["traceEvents"]
        names = {event["name"] for event in events}
        assert "compile.coloring" in names
        assert "replay.execute" in names

    def test_serve_with_metrics_port_and_trace(self, tmp_path, capsys):
        import json

        trace_out = tmp_path / "serve-trace.json"
        code = main(
            [
                "serve", "--tenants", "1", "--clients", "2",
                "--requests", "12", "--dim", "64", "--length", "16",
                "--metrics-port", "0", "--trace", str(trace_out),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verified=True" in out
        assert "/metrics" in out
        names = {
            event["name"]
            for event in json.loads(trace_out.read_text())["traceEvents"]
        }
        assert {"serve.batch", "serve.kernel", "serve.enqueue"} <= names
