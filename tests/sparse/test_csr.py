"""Unit tests for the CSR container."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings

from repro import CooMatrix, CsrMatrix
from repro.errors import MatrixFormatError
from tests.strategies import coo_matrices


class TestConstruction:
    def test_from_coo_roundtrip(self, small_matrix):
        csr = CsrMatrix.from_coo(small_matrix)
        assert csr.to_coo() == small_matrix

    def test_from_arrays_validation(self):
        with pytest.raises(MatrixFormatError, match="indptr"):
            CsrMatrix.from_arrays(np.array([0, 1]), np.array([0]), np.ones(1), (3, 3))
        with pytest.raises(MatrixFormatError, match="end at nnz"):
            CsrMatrix.from_arrays(
                np.array([0, 2]), np.array([0]), np.ones(1), (1, 3)
            )
        with pytest.raises(MatrixFormatError, match="non-decreasing"):
            CsrMatrix.from_arrays(
                np.array([0, 2, 1, 3]), np.array([0, 1, 2]), np.ones(3), (3, 3)
            )
        with pytest.raises(MatrixFormatError, match="column index"):
            CsrMatrix.from_arrays(
                np.array([0, 1]), np.array([9]), np.ones(1), (1, 3)
            )
        with pytest.raises(MatrixFormatError, match="equal length"):
            CsrMatrix.from_arrays(
                np.array([0, 1]), np.array([0]), np.ones(2), (1, 3)
            )


class TestAccess:
    def test_row_access(self, small_matrix):
        csr = CsrMatrix.from_coo(small_matrix)
        for i in range(small_matrix.shape[0]):
            cols, vals = csr.row(i)
            mask = small_matrix.rows == i
            np.testing.assert_array_equal(cols, small_matrix.cols[mask])
            np.testing.assert_array_equal(vals, small_matrix.data[mask])
            assert csr.row_nnz(i) == int(mask.sum())

    def test_nnz(self, small_matrix):
        assert CsrMatrix.from_coo(small_matrix).nnz == small_matrix.nnz


class TestMatvec:
    def test_matches_scipy(self, small_matrix, rng):
        csr = CsrMatrix.from_coo(small_matrix)
        x = rng.normal(size=small_matrix.shape[1])
        reference = sp.csr_matrix(
            (csr.data, csr.indices, csr.indptr), shape=csr.shape
        )
        np.testing.assert_allclose(csr.matvec(x), reference @ x)

    def test_wrong_vector_length(self, small_matrix):
        csr = CsrMatrix.from_coo(small_matrix)
        with pytest.raises(MatrixFormatError, match="incompatible"):
            csr.matvec(np.zeros(small_matrix.shape[1] + 3))

    def test_empty_matrix(self):
        csr = CsrMatrix.from_coo(CooMatrix.empty((4, 5)))
        np.testing.assert_array_equal(csr.matvec(np.ones(5)), np.zeros(4))

    @given(coo_matrices())
    @settings(max_examples=40, deadline=None)
    def test_matvec_equals_coo(self, matrix):
        csr = CsrMatrix.from_coo(matrix)
        x = np.linspace(0.5, 1.5, matrix.shape[1])
        np.testing.assert_allclose(csr.matvec(x), matrix.matvec(x), atol=1e-12)
