"""Tests for sparsity statistics."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CooMatrix, uniform_random
from repro.errors import HardwareConfigError
from repro.sparse.stats import (
    colseg_degrees,
    geometric_mean,
    row_degrees,
    window_bounds,
    window_color_lower_bound,
    window_count,
    window_degree_std,
)
from tests.strategies import coo_matrices


class TestWindows:
    def test_window_count(self):
        assert window_count(100, 32) == 4
        assert window_count(96, 32) == 3
        assert window_count(1, 32) == 1
        assert window_count(0, 32) == 0

    def test_window_bounds_cover_rows(self):
        bounds = window_bounds(100, 32)
        assert bounds[0] == (0, 32)
        assert bounds[-1] == (96, 100)
        covered = sum(stop - start for start, stop in bounds)
        assert covered == 100

    def test_invalid_length(self):
        with pytest.raises(HardwareConfigError, match="positive"):
            window_count(10, 0)


class TestDegrees:
    def test_row_degrees(self, small_matrix):
        np.testing.assert_array_equal(
            row_degrees(small_matrix), small_matrix.row_counts()
        )

    def test_colseg_degrees_sum(self, small_matrix):
        segs = colseg_degrees(small_matrix, 8)
        assert segs.sum() == small_matrix.nnz
        assert segs.shape == (8,)

    def test_colseg_folding(self):
        matrix = CooMatrix.from_arrays(
            np.array([0, 0, 0]), np.array([1, 5, 9]), np.ones(3), (1, 12)
        )
        segs = colseg_degrees(matrix, 4)
        assert segs[1] == 3  # columns 1, 5, 9 all fold onto segment 1


class TestColorLowerBound:
    def test_single_window_max_degree(self):
        # One row with 3 nonzeros in distinct segments: row degree dominates.
        matrix = CooMatrix.from_arrays(
            np.array([0, 0, 0]), np.array([0, 1, 2]), np.ones(3), (2, 4)
        )
        assert window_color_lower_bound(matrix, 2) == [3]

    def test_column_segment_dominates(self):
        # Two rows, both hitting column 0: segment degree 2 > row degree 1.
        matrix = CooMatrix.from_arrays(
            np.array([0, 1]), np.array([0, 0]), np.ones(2), (2, 4)
        )
        assert window_color_lower_bound(matrix, 2) == [2]

    def test_multiple_windows(self, square_matrix):
        bounds = window_color_lower_bound(square_matrix, 32)
        assert len(bounds) == 3
        assert all(b >= 1 for b in bounds)

    def test_empty_matrix(self):
        assert window_color_lower_bound(CooMatrix.empty((10, 10)), 4) == [
            0,
            0,
            0,
        ]

    @given(coo_matrices(max_dim=30))
    @settings(max_examples=40, deadline=None)
    def test_bound_at_least_mean_work(self, matrix):
        length = 8
        bounds = window_color_lower_bound(matrix, length)
        # Sum of window maxima is at least total work / length.
        assert sum(bounds) >= matrix.nnz / length - 1e-9


class TestDegreeStd:
    def test_uniform_rows_zero_std(self):
        matrix = CooMatrix.from_arrays(
            np.array([0, 1, 2, 3]), np.array([0, 1, 2, 3]), np.ones(4), (4, 4)
        )
        row_std, _ = window_degree_std(matrix, 4)
        assert row_std == 0.0

    def test_skewed_rows_positive_std(self, square_matrix):
        row_std, col_std = window_degree_std(square_matrix, 32)
        assert row_std > 0
        assert col_std > 0

    def test_empty(self):
        assert window_degree_std(CooMatrix.empty((0, 0)), 4) == (0.0, 0.0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            geometric_mean([1.0, 0.0])
