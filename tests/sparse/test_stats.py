"""Tests for sparsity statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CooMatrix, uniform_random
from repro.errors import HardwareConfigError
from repro.sparse.stats import (
    colseg_degrees,
    geometric_mean,
    row_degrees,
    window_bounds,
    window_color_lower_bound,
    window_count,
    window_degree_std,
)
from tests.strategies import coo_matrices


def _seed_window_color_lower_bound(matrix: CooMatrix, length: int) -> list:
    """Frozen pre-vectorization implementation: per-window boolean masks.

    Kept verbatim as the equivalence oracle for the flat-bincount port
    (the same freeze-the-seed discipline as ``repro.graph._reference``).
    """
    m, _ = matrix.shape
    bounds = []
    window_of_row = matrix.rows // length
    for w in range(window_count(m, length)):
        mask = window_of_row == w
        if not mask.any():
            bounds.append(0)
            continue
        rows_w = matrix.rows[mask] % length
        cols_w = matrix.cols[mask] % length
        max_row = int(np.bincount(rows_w, minlength=length).max())
        max_col = int(np.bincount(cols_w, minlength=length).max())
        bounds.append(max(max_row, max_col))
    return bounds


def _seed_window_degree_std(matrix: CooMatrix, length: int) -> tuple:
    """Frozen pre-vectorization implementation of window_degree_std."""
    m, _ = matrix.shape
    row_stds, col_stds = [], []
    window_of_row = matrix.rows // length
    for w in range(window_count(m, length)):
        mask = window_of_row == w
        rows_w = matrix.rows[mask] % length
        cols_w = matrix.cols[mask] % length
        rows_in_window = min(length, m - w * length)
        row_counts = np.bincount(rows_w, minlength=rows_in_window)
        col_counts = np.bincount(cols_w, minlength=length)
        row_stds.append(float(np.std(row_counts)))
        col_stds.append(float(np.std(col_counts)))
    if not row_stds:
        return 0.0, 0.0
    return float(np.mean(row_stds)), float(np.mean(col_stds))


class TestWindows:
    def test_window_count(self):
        assert window_count(100, 32) == 4
        assert window_count(96, 32) == 3
        assert window_count(1, 32) == 1
        assert window_count(0, 32) == 0

    def test_window_bounds_cover_rows(self):
        bounds = window_bounds(100, 32)
        assert bounds[0] == (0, 32)
        assert bounds[-1] == (96, 100)
        covered = sum(stop - start for start, stop in bounds)
        assert covered == 100

    def test_invalid_length(self):
        with pytest.raises(HardwareConfigError, match="positive"):
            window_count(10, 0)


class TestDegrees:
    def test_row_degrees(self, small_matrix):
        np.testing.assert_array_equal(
            row_degrees(small_matrix), small_matrix.row_counts()
        )

    def test_colseg_degrees_sum(self, small_matrix):
        segs = colseg_degrees(small_matrix, 8)
        assert segs.sum() == small_matrix.nnz
        assert segs.shape == (8,)

    def test_colseg_folding(self):
        matrix = CooMatrix.from_arrays(
            np.array([0, 0, 0]), np.array([1, 5, 9]), np.ones(3), (1, 12)
        )
        segs = colseg_degrees(matrix, 4)
        assert segs[1] == 3  # columns 1, 5, 9 all fold onto segment 1


class TestColorLowerBound:
    def test_single_window_max_degree(self):
        # One row with 3 nonzeros in distinct segments: row degree dominates.
        matrix = CooMatrix.from_arrays(
            np.array([0, 0, 0]), np.array([0, 1, 2]), np.ones(3), (2, 4)
        )
        assert window_color_lower_bound(matrix, 2) == [3]

    def test_column_segment_dominates(self):
        # Two rows, both hitting column 0: segment degree 2 > row degree 1.
        matrix = CooMatrix.from_arrays(
            np.array([0, 1]), np.array([0, 0]), np.ones(2), (2, 4)
        )
        assert window_color_lower_bound(matrix, 2) == [2]

    def test_multiple_windows(self, square_matrix):
        bounds = window_color_lower_bound(square_matrix, 32)
        assert len(bounds) == 3
        assert all(b >= 1 for b in bounds)

    def test_empty_matrix(self):
        assert window_color_lower_bound(CooMatrix.empty((10, 10)), 4) == [
            0,
            0,
            0,
        ]

    @given(coo_matrices(max_dim=30))
    @settings(max_examples=40, deadline=None)
    def test_bound_at_least_mean_work(self, matrix):
        length = 8
        bounds = window_color_lower_bound(matrix, length)
        # Sum of window maxima is at least total work / length.
        assert sum(bounds) >= matrix.nnz / length - 1e-9


class TestDegreeStd:
    def test_uniform_rows_zero_std(self):
        matrix = CooMatrix.from_arrays(
            np.array([0, 1, 2, 3]), np.array([0, 1, 2, 3]), np.ones(4), (4, 4)
        )
        row_std, _ = window_degree_std(matrix, 4)
        assert row_std == 0.0

    def test_skewed_rows_positive_std(self, square_matrix):
        row_std, col_std = window_degree_std(square_matrix, 32)
        assert row_std > 0
        assert col_std > 0

    def test_empty(self):
        assert window_degree_std(CooMatrix.empty((0, 0)), 4) == (0.0, 0.0)


class TestVectorizedEquivalence:
    """The flat-bincount ports must reproduce the seed mask-loop results."""

    @given(coo_matrices(max_dim=40), st.integers(min_value=1, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_lower_bound_matches_seed(self, matrix, length):
        assert window_color_lower_bound(matrix, length) == (
            _seed_window_color_lower_bound(matrix, length)
        )

    @given(coo_matrices(max_dim=40), st.integers(min_value=1, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_degree_std_matches_seed(self, matrix, length):
        got = window_degree_std(matrix, length)
        expected = _seed_window_degree_std(matrix, length)
        assert got == pytest.approx(expected, abs=1e-9)

    def test_short_last_window_row_population(self):
        """m not a multiple of l: the last window's row std is taken over
        the rows it actually has, not over l zero-padded slots."""
        matrix = CooMatrix.from_arrays(
            np.array([0, 1, 2, 3, 4]),
            np.array([0, 1, 2, 3, 0]),
            np.ones(5),
            (5, 8),
        )
        got = window_degree_std(matrix, 4)
        assert got == pytest.approx(_seed_window_degree_std(matrix, 4))
        # Window 1 holds exactly one row with one nonzero: zero deviation.
        assert got[0] == 0.0

    def test_window_with_no_rows_of_matrix(self):
        """Empty trailing windows (all-zero rows) agree with the seed."""
        matrix = CooMatrix.from_arrays(
            np.array([0]), np.array([0]), np.ones(1), (9, 9)
        )
        assert window_color_lower_bound(matrix, 3) == [1, 0, 0]
        assert window_degree_std(matrix, 3) == pytest.approx(
            _seed_window_degree_std(matrix, 3)
        )


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            geometric_mean([1.0, 0.0])
