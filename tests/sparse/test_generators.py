"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.sparse.generators import (
    banded,
    block_diagonal,
    k_regular,
    power_law,
    uniform_random,
)


class TestUniform:
    def test_density_approximate(self):
        matrix = uniform_random(200, 200, 0.05, seed=1)
        assert matrix.density == pytest.approx(0.05, rel=0.15)

    def test_deterministic(self):
        assert uniform_random(50, 50, 0.1, seed=3) == uniform_random(
            50, 50, 0.1, seed=3
        )

    def test_seed_changes_output(self):
        assert uniform_random(50, 50, 0.1, seed=3) != uniform_random(
            50, 50, 0.1, seed=4
        )

    def test_zero_density(self):
        assert uniform_random(10, 10, 0.0).nnz == 0

    def test_full_density(self):
        assert uniform_random(8, 8, 1.0, seed=0).nnz == 64

    def test_invalid_density(self):
        with pytest.raises(DatasetError, match="density"):
            uniform_random(10, 10, 1.5)

    def test_negative_dim(self):
        with pytest.raises(DatasetError, match="non-negative"):
            uniform_random(-1, 10, 0.1)

    def test_zero_dim(self):
        assert uniform_random(0, 10, 0.5).nnz == 0

    def test_values_nonzero(self):
        matrix = uniform_random(100, 100, 0.05, seed=2)
        assert (matrix.data != 0).all()
        assert (matrix.data >= 0.1).all()


class TestPowerLaw:
    def test_nnz_close_to_target(self):
        matrix = power_law(400, 400, 0.01, seed=5)
        assert matrix.nnz == pytest.approx(400 * 400 * 0.01, rel=0.25)

    def test_heavy_tail_present(self):
        matrix = power_law(600, 600, 0.01, seed=6)
        counts = matrix.row_counts()
        assert counts.max() > 4 * counts.mean()

    def test_hub_cap_respected(self):
        matrix = power_law(600, 600, 0.01, seed=6, hub_cap=50.0)
        counts = matrix.row_counts()
        # Expected max degree is capped at 50x mean; allow sampling headroom.
        assert counts.max() <= 50.0 * max(1.0, counts.mean()) * 2.0

    def test_tighter_cap_smaller_hub(self):
        loose = power_law(600, 600, 0.01, seed=6, hub_cap=200.0)
        tight = power_law(600, 600, 0.01, seed=6, hub_cap=5.0)
        assert tight.row_counts().max() <= loose.row_counts().max()

    def test_invalid_hub_cap(self):
        with pytest.raises(DatasetError, match="hub_cap"):
            power_law(10, 10, 0.1, hub_cap=0.5)

    def test_zero_density(self):
        assert power_law(10, 10, 0.0).nnz == 0

    def test_deterministic(self):
        assert power_law(100, 100, 0.02, seed=1) == power_law(
            100, 100, 0.02, seed=1
        )


class TestKRegular:
    def test_exact_row_degree(self):
        matrix = k_regular(64, 64, 5, seed=1)
        assert (matrix.row_counts() == 5).all()

    def test_square_column_degree_balanced(self):
        matrix = k_regular(64, 64, 5, seed=1)
        counts = matrix.col_counts()
        # Union of permutations with small repair drift.
        assert counts.min() >= 3
        assert counts.max() <= 8

    def test_rectangular(self):
        matrix = k_regular(30, 50, 4, seed=2)
        assert (matrix.row_counts() == 4).all()
        assert matrix.shape == (30, 50)

    def test_k_zero(self):
        assert k_regular(10, 10, 0).nnz == 0

    def test_k_exceeds_n(self):
        with pytest.raises(DatasetError, match="exceeds"):
            k_regular(10, 5, 6)

    def test_negative_k(self):
        with pytest.raises(DatasetError, match="non-negative"):
            k_regular(10, 10, -1)

    def test_k_equals_n_is_dense(self):
        matrix = k_regular(6, 6, 6, seed=0)
        assert matrix.nnz == 36


class TestBanded:
    def test_full_band_width(self):
        matrix = banded(20, 20, bandwidth=2, fill=1.0, seed=0)
        spread = np.abs(matrix.rows - matrix.cols)
        assert spread.max() <= 2
        # Interior rows get the full 2*bw+1 band.
        assert matrix.row_counts()[5] == 5

    def test_partial_fill_keeps_diagonal(self):
        matrix = banded(50, 50, bandwidth=3, fill=0.3, seed=1)
        diag_present = set(
            zip(matrix.rows.tolist(), matrix.cols.tolist())
        )
        assert all((i, i) in diag_present for i in range(50))

    def test_rectangular_band_follows_scaled_diagonal(self):
        matrix = banded(10, 40, bandwidth=1, fill=1.0, seed=0)
        centers = (matrix.rows * 4).astype(np.int64)
        assert (np.abs(matrix.cols - centers) <= 1).all()

    def test_invalid_args(self):
        with pytest.raises(DatasetError, match="bandwidth"):
            banded(5, 5, bandwidth=-1)
        with pytest.raises(DatasetError, match="fill"):
            banded(5, 5, bandwidth=1, fill=2.0)

    def test_zero_dim(self):
        assert banded(0, 5, 1).nnz == 0


class TestBlockDiagonal:
    def test_blocks_on_diagonal(self):
        matrix = block_diagonal(40, 40, block=10, block_density=1.0, seed=0)
        assert (matrix.rows // 10 == matrix.cols // 10).all()
        assert matrix.nnz == 40 * 10

    def test_density_within_blocks(self):
        matrix = block_diagonal(100, 100, block=20, block_density=0.5, seed=1)
        expected = 100 * 20 * 0.5
        assert matrix.nnz == pytest.approx(expected, rel=0.2)

    def test_invalid_args(self):
        with pytest.raises(DatasetError, match="block size"):
            block_diagonal(10, 10, block=0)
        with pytest.raises(DatasetError, match="block_density"):
            block_diagonal(10, 10, block=2, block_density=-0.1)

    def test_non_divisible_dimension(self):
        matrix = block_diagonal(25, 25, block=10, block_density=1.0, seed=0)
        assert matrix.shape == (25, 25)
        assert (matrix.rows < 25).all() and (matrix.cols < 25).all()
