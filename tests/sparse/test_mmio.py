"""Tests for the Matrix Market reader/writer."""

import numpy as np
import pytest

from repro import CooMatrix
from repro.errors import MatrixFormatError
from repro.sparse.mmio import read_matrix_market, write_matrix_market


class TestRoundtrip:
    def test_write_read(self, small_matrix, tmp_path):
        path = tmp_path / "matrix.mtx"
        write_matrix_market(small_matrix, path)
        assert read_matrix_market(path) == small_matrix

    def test_empty_matrix(self, tmp_path):
        path = tmp_path / "empty.mtx"
        write_matrix_market(CooMatrix.empty((3, 7)), path)
        loaded = read_matrix_market(path)
        assert loaded.shape == (3, 7)
        assert loaded.nnz == 0


class TestFormats:
    def test_pattern_matrix(self, tmp_path):
        path = tmp_path / "pattern.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        matrix = read_matrix_market(path)
        assert matrix.nnz == 2
        assert (matrix.data == 1.0).all()

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n1 1 5.0\n3 1 2.0\n"
        )
        matrix = read_matrix_market(path)
        assert matrix.nnz == 3  # diagonal + two mirrored off-diagonals
        dense = np.zeros((3, 3))
        dense[matrix.rows, matrix.cols] = matrix.data
        np.testing.assert_array_equal(dense, dense.T)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "comments.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n"
            "1 1 1\n1 1 4.0\n"
        )
        assert read_matrix_market(path).data.tolist() == [4.0]


class TestErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix\n1 1 0\n")
        with pytest.raises(MatrixFormatError, match="header"):
            read_matrix_market(path)

    def test_array_format_rejected(self, tmp_path):
        path = tmp_path / "array.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n1 1\n1.0\n")
        with pytest.raises(MatrixFormatError, match="coordinate"):
            read_matrix_market(path)

    def test_truncated_entries(self, tmp_path):
        path = tmp_path / "trunc.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        )
        with pytest.raises(MatrixFormatError, match="truncated"):
            read_matrix_market(path)

    def test_bad_size_line(self, tmp_path):
        path = tmp_path / "size.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\nnot numbers\n"
        )
        with pytest.raises(MatrixFormatError, match="size line"):
            read_matrix_market(path)
