"""Tests for the surrogate dataset registry."""

import pytest

from repro.errors import DatasetError
from repro.sparse.datasets import (
    dataset_names,
    figure7_suite,
    get_spec,
    load_dataset,
    serpens_suite,
)


class TestRegistry:
    def test_suite_sizes(self):
        assert len(figure7_suite()) == 12
        assert len(serpens_suite()) == 9
        assert len(dataset_names()) == 21

    def test_paper_metadata_consistent(self):
        for spec in figure7_suite() + serpens_suite():
            assert spec.paper_dim > 0
            assert spec.paper_nnz > 0
            assert 0 < spec.paper_density < 1
            assert spec.mean_row_degree == pytest.approx(
                spec.paper_nnz / spec.paper_dim
            )

    def test_known_matrix_values(self):
        spec = get_spec("wiki-Vote")
        assert spec.paper_dim == 8_297
        assert spec.source == "SNAP"
        spec = get_spec("crankseg_2")
        assert spec.paper_nnz == 14_148_858

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            get_spec("not_a_matrix")


class TestLoading:
    def test_small_matrix_loaded_at_paper_size(self):
        spec = get_spec("CollegeMsg")  # dim 1899 > floor 1024, stays close
        matrix = load_dataset("CollegeMsg", scale=64)
        assert matrix.shape[0] >= 1024

    def test_scaling_preserves_row_degree(self):
        spec = get_spec("scircuit")
        matrix = load_dataset("scircuit", scale=32)
        measured = matrix.nnz / matrix.shape[0]
        assert measured == pytest.approx(spec.mean_row_degree, rel=0.35)

    def test_scale_one_gives_paper_dim(self):
        matrix = load_dataset("TSCOPF-1047", scale=1.0)
        assert matrix.shape == (1_047, 1_047)

    def test_floor_dim_respected(self):
        matrix = load_dataset("soc_pokec", scale=10_000, floor_dim=2048)
        assert matrix.shape[0] == 2048

    def test_invalid_scale(self):
        with pytest.raises(DatasetError, match="scale"):
            load_dataset("scircuit", scale=0.5)

    def test_deterministic(self):
        assert load_dataset("wiki-Vote", scale=8) == load_dataset(
            "wiki-Vote", scale=8
        )

    def test_every_family_generates(self):
        # One representative per family keeps this fast.
        for name in (
            "scircuit",       # circuit
            "poisson3db",     # fem
            "wiki-Vote",      # social
            "cage12",         # kreg
            "TSCOPF-1047",    # block
            "mycielskian11",  # dense
            "Si41Ge41H72",    # quantum
        ):
            matrix = load_dataset(name, scale=64)
            assert matrix.nnz > 0, name

    def test_density_capped(self):
        # heart1 at tiny dimension would exceed density 0.5 without the cap.
        matrix = load_dataset("heart1", scale=1000, floor_dim=512)
        assert matrix.density <= 0.55
