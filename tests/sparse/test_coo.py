"""Unit tests for the COO container."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings

from repro import CooMatrix
from repro.errors import MatrixFormatError
from tests.strategies import coo_matrices


class TestConstruction:
    def test_sorted_and_deduplicated(self):
        matrix = CooMatrix.from_arrays(
            np.array([1, 0, 1]), np.array([0, 1, 0]), np.array([2.0, 3.0, 4.0]),
            (2, 2),
        )
        assert matrix.nnz == 2
        assert matrix.rows.tolist() == [0, 1]
        assert matrix.cols.tolist() == [1, 0]
        assert matrix.data.tolist() == [3.0, 6.0]  # duplicates summed

    def test_duplicates_rejected_when_disallowed(self):
        with pytest.raises(MatrixFormatError, match="duplicate"):
            CooMatrix.from_arrays(
                np.array([0, 0]), np.array([0, 0]), np.array([1.0, 1.0]),
                (1, 1), sum_duplicates=False,
            )

    def test_explicit_zeros_dropped(self):
        matrix = CooMatrix.from_arrays(
            np.array([0, 1]), np.array([0, 1]), np.array([0.0, 5.0]), (2, 2)
        )
        assert matrix.nnz == 1
        assert matrix.data.tolist() == [5.0]

    def test_duplicates_cancelling_to_zero_dropped(self):
        matrix = CooMatrix.from_arrays(
            np.array([0, 0]), np.array([0, 0]), np.array([1.0, -1.0]), (1, 1)
        )
        assert matrix.nnz == 0

    def test_row_out_of_range(self):
        with pytest.raises(MatrixFormatError, match="row index"):
            CooMatrix.from_arrays(
                np.array([2]), np.array([0]), np.array([1.0]), (2, 2)
            )

    def test_col_out_of_range(self):
        with pytest.raises(MatrixFormatError, match="column index"):
            CooMatrix.from_arrays(
                np.array([0]), np.array([5]), np.array([1.0]), (2, 2)
            )

    def test_negative_index_rejected(self):
        with pytest.raises(MatrixFormatError):
            CooMatrix.from_arrays(
                np.array([-1]), np.array([0]), np.array([1.0]), (2, 2)
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(MatrixFormatError, match="disagree"):
            CooMatrix.from_arrays(
                np.array([0]), np.array([0, 1]), np.array([1.0]), (2, 2)
            )

    def test_negative_shape_rejected(self):
        with pytest.raises(MatrixFormatError, match="shape"):
            CooMatrix.from_arrays(
                np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0), (-1, 2)
            )

    def test_non_1d_rejected(self):
        with pytest.raises(MatrixFormatError, match="1-D"):
            CooMatrix.from_arrays(
                np.zeros((1, 1), np.int64), np.zeros(1, np.int64),
                np.zeros(1), (2, 2),
            )

    def test_empty(self):
        matrix = CooMatrix.empty((3, 4))
        assert matrix.nnz == 0
        assert matrix.shape == (3, 4)
        assert matrix.density == 0.0


class TestProperties:
    def test_density(self):
        matrix = CooMatrix.from_arrays(
            np.array([0]), np.array([0]), np.array([1.0]), (2, 5)
        )
        assert matrix.density == pytest.approx(0.1)

    def test_zero_dim_density(self):
        assert CooMatrix.empty((0, 5)).density == 0.0

    def test_row_col_counts(self, small_matrix):
        assert small_matrix.row_counts().sum() == small_matrix.nnz
        assert small_matrix.col_counts().sum() == small_matrix.nnz
        assert small_matrix.row_counts().shape == (small_matrix.shape[0],)
        assert small_matrix.col_counts().shape == (small_matrix.shape[1],)


class TestOperations:
    def test_matvec_matches_scipy(self, small_matrix, rng):
        x = rng.normal(size=small_matrix.shape[1])
        reference = sp.coo_matrix(
            (small_matrix.data, (small_matrix.rows, small_matrix.cols)),
            shape=small_matrix.shape,
        )
        np.testing.assert_allclose(small_matrix.matvec(x), reference @ x)

    def test_matvec_wrong_length(self, small_matrix):
        with pytest.raises(MatrixFormatError, match="incompatible"):
            small_matrix.matvec(np.zeros(small_matrix.shape[1] + 1))

    def test_transpose_involution(self, small_matrix):
        assert small_matrix.transpose().transpose() == small_matrix

    def test_transpose_matvec(self, small_matrix, rng):
        x = rng.normal(size=small_matrix.shape[0])
        reference = sp.coo_matrix(
            (small_matrix.data, (small_matrix.rows, small_matrix.cols)),
            shape=small_matrix.shape,
        ).T
        np.testing.assert_allclose(
            small_matrix.transpose().matvec(x), reference @ x
        )

    def test_permute_rows_roundtrip(self, small_matrix, rng):
        m = small_matrix.shape[0]
        perm = rng.permutation(m)
        inverse = np.empty(m, dtype=np.int64)
        inverse[perm] = np.arange(m)
        assert small_matrix.permute_rows(perm).permute_rows(inverse) == small_matrix

    def test_permute_rows_moves_data(self):
        matrix = CooMatrix.from_arrays(
            np.array([0]), np.array([1]), np.array([5.0]), (2, 2)
        )
        permuted = matrix.permute_rows(np.array([1, 0]))
        assert permuted.rows.tolist() == [1]

    def test_permute_rejects_non_permutation(self, small_matrix):
        bad = np.zeros(small_matrix.shape[0], dtype=np.int64)
        with pytest.raises(MatrixFormatError, match="permutation"):
            small_matrix.permute_rows(bad)

    def test_permute_cols_matvec_consistency(self, small_matrix, rng):
        n = small_matrix.shape[1]
        perm = rng.permutation(n)
        permuted = small_matrix.permute_cols(perm)
        x = rng.normal(size=n)
        # Permuting the vector the same way leaves the product unchanged.
        np.testing.assert_allclose(
            small_matrix.matvec(x),
            permuted.matvec(_permute_vector(x, perm)),
        )

    def test_row_window_extracts_and_rebases(self, square_matrix):
        window = square_matrix.row_window(32, 64)
        assert window.shape == (32, square_matrix.shape[1])
        mask = (square_matrix.rows >= 32) & (square_matrix.rows < 64)
        assert window.nnz == int(mask.sum())
        assert (window.rows < 32).all()

    def test_row_window_bad_range(self, square_matrix):
        with pytest.raises(MatrixFormatError, match="window"):
            square_matrix.row_window(10, 5)

    def test_with_data_same_pattern(self, small_matrix, rng):
        new_values = rng.uniform(1.0, 2.0, size=small_matrix.nnz)
        updated = small_matrix.with_data(new_values)
        assert np.array_equal(updated.rows, small_matrix.rows)
        np.testing.assert_array_equal(updated.data, new_values)

    def test_with_data_wrong_length(self, small_matrix):
        with pytest.raises(MatrixFormatError, match="length"):
            small_matrix.with_data(np.ones(small_matrix.nnz + 1))

    def test_with_data_rejects_zeros(self, small_matrix):
        values = np.ones(small_matrix.nnz)
        values[0] = 0.0
        with pytest.raises(MatrixFormatError, match="zero"):
            small_matrix.with_data(values)


def _permute_vector(x, perm):
    """x in new column order: position perm[j] holds old x[j]."""
    out = np.empty_like(x)
    out[perm] = x
    return out


class TestPropertyBased:
    @given(coo_matrices())
    @settings(max_examples=60, deadline=None)
    def test_canonical_invariants(self, matrix):
        # Sorted by (row, col), no duplicates, no zeros, counts consistent.
        keys = matrix.rows * max(1, matrix.shape[1]) + matrix.cols
        assert (np.diff(keys) > 0).all() if keys.size > 1 else True
        assert (matrix.data != 0).all()
        assert matrix.row_counts().sum() == matrix.nnz

    @given(coo_matrices())
    @settings(max_examples=40, deadline=None)
    def test_matvec_matches_dense(self, matrix):
        x = np.linspace(-1.0, 1.0, matrix.shape[1])
        dense = np.zeros(matrix.shape)
        dense[matrix.rows, matrix.cols] = matrix.data
        np.testing.assert_allclose(matrix.matvec(x), dense @ x, atol=1e-12)
