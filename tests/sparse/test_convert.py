"""Tests for scipy/dense boundary conversions."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings

from repro.errors import MatrixFormatError
from repro.sparse.convert import from_dense, from_scipy, to_dense, to_scipy
from tests.strategies import coo_matrices


class TestScipy:
    def test_roundtrip(self, small_matrix):
        assert from_scipy(to_scipy(small_matrix)) == small_matrix

    def test_from_scipy_formats(self, small_matrix):
        scipy_matrix = to_scipy(small_matrix)
        for converted in (scipy_matrix.tocsr(), scipy_matrix.tocsc()):
            assert from_scipy(converted) == small_matrix

    def test_from_scipy_sums_duplicates(self):
        scipy_matrix = sp.coo_matrix(
            (np.array([1.0, 2.0]), (np.array([0, 0]), np.array([0, 0]))),
            shape=(1, 1),
        )
        assert from_scipy(scipy_matrix).data.tolist() == [3.0]


class TestDense:
    def test_roundtrip(self, small_matrix):
        assert from_dense(to_dense(small_matrix)) == small_matrix

    def test_from_dense_drops_zeros(self):
        matrix = from_dense(np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert matrix.nnz == 2

    def test_from_dense_rejects_1d(self):
        with pytest.raises(MatrixFormatError, match="2-D"):
            from_dense(np.zeros(4))

    @given(coo_matrices(max_dim=20))
    @settings(max_examples=30, deadline=None)
    def test_dense_matvec_agreement(self, matrix):
        x = np.linspace(-1, 1, matrix.shape[1])
        np.testing.assert_allclose(
            matrix.matvec(x), to_dense(matrix) @ x, atol=1e-12
        )
