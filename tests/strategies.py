"""Hypothesis strategies for property-based tests."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro import CooMatrix
from repro.graph.bipartite import WindowGraph


@st.composite
def coo_matrices(
    draw,
    max_dim: int = 48,
    max_density: float = 0.4,
    min_dim: int = 1,
):
    """Random canonical COO matrices, including empty and degenerate ones."""
    m = draw(st.integers(min_value=min_dim, max_value=max_dim))
    n = draw(st.integers(min_value=min_dim, max_value=max_dim))
    density = draw(st.floats(min_value=0.0, max_value=max_density))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    total = m * n
    nnz = int(round(total * density))
    if nnz == 0:
        return CooMatrix.empty((m, n))
    flat = rng.choice(total, size=min(nnz, total), replace=False)
    rows, cols = np.divmod(flat, n)
    values = rng.uniform(0.5, 2.0, size=rows.size)
    return CooMatrix.from_arrays(rows, cols, values, (m, n))


@st.composite
def window_graphs(draw, max_length: int = 16, max_edges: int = 120):
    """Random window bipartite multigraphs (parallel edges included)."""
    length = draw(st.integers(min_value=1, max_value=max_length))
    edge_count = draw(st.integers(min_value=0, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    local_rows = rng.integers(0, length, size=edge_count)
    # Columns span several fold layers so parallel edges occur naturally.
    cols = rng.integers(0, length * 4, size=edge_count)
    # Deduplicate (row, col) pairs to mirror canonical COO input.
    if edge_count:
        keys = local_rows * (length * 4) + cols
        _, unique_idx = np.unique(keys, return_index=True)
        unique_idx.sort()
        local_rows = local_rows[unique_idx]
        cols = cols[unique_idx]
    order = np.lexsort((cols, local_rows))
    local_rows, cols = local_rows[order], cols[order]
    values = rng.uniform(0.5, 2.0, size=local_rows.size)
    return WindowGraph(
        length=length,
        local_rows=local_rows.astype(np.int64),
        colsegs=(cols % length).astype(np.int64),
        cols=cols.astype(np.int64),
        values=values,
    )
