"""The example scripts must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "scheduling_anatomy.py",
    "iterative_solver.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_reports_utilization():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "utilization" in completed.stdout


def test_anatomy_matches_figure5():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "scheduling_anatomy.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "(5, 4)" in completed.stdout  # the paper's window colors
    assert "correctly rejected" in completed.stdout
