"""Tests for the experiment runner helpers."""

import pytest

from repro import uniform_random
from repro.accelerators import GustAccelerator, Systolic1D
from repro.eval.runner import by_design, report_for, run_designs


@pytest.fixture
def results():
    matrices = [
        ("a", uniform_random(64, 64, 0.05, seed=1)),
        ("b", uniform_random(64, 64, 0.1, seed=2)),
    ]
    designs = [Systolic1D(16), GustAccelerator(16)]
    return run_designs(designs, matrices)


class TestRunner:
    def test_cartesian_product(self, results):
        assert len(results) == 4
        assert {r.design for r in results} == {"1D", "GUST-EC/LB"}
        assert {r.matrix for r in results} == {"a", "b"}

    def test_by_design(self, results):
        grouped = by_design(results)
        assert set(grouped) == {"1D", "GUST-EC/LB"}
        assert [r.matrix for r in grouped["1D"]] == ["a", "b"]

    def test_report_for(self, results):
        report = report_for(results, "1D", "a")
        assert report.cycles > 0

    def test_report_for_missing(self, results):
        with pytest.raises(KeyError):
            report_for(results, "1D", "zzz")

    def test_run_result_derived_metrics(self, results):
        result = results[0]
        assert result.seconds == result.cycle_report.cycles / 96e6
        assert result.gflops >= 0
