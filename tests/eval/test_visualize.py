"""Tests for the terminal visualizations."""

import numpy as np

from repro import CooMatrix, GustPipeline, uniform_random
from repro.eval.visualize import (
    degree_profile,
    schedule_occupancy,
    window_color_chart,
)


class TestScheduleOccupancy:
    def test_renders_dimensions_and_fill(self, square_matrix):
        schedule, _, _ = GustPipeline(32).preprocess(square_matrix)
        art = schedule_occupancy(schedule, width=16, height=8)
        lines = art.splitlines()
        assert "occupancy" in lines[0]
        assert len(lines) == 9  # header + 8 binned rows
        assert all(len(line) == 16 for line in lines[1:])

    def test_empty_schedule(self):
        schedule, _, _ = GustPipeline(8).preprocess(CooMatrix.empty((4, 4)))
        assert "empty" in schedule_occupancy(schedule)

    def test_dense_schedule_uses_dark_shades(self):
        # A diagonal matrix schedules to a fully dense single column set.
        n = 16
        matrix = CooMatrix.from_arrays(
            np.arange(n), np.arange(n), np.ones(n), (n, n)
        )
        schedule, _, _ = GustPipeline(16, load_balance=False).preprocess(matrix)
        art = schedule_occupancy(schedule, width=16, height=4)
        assert "@" in art


class TestDegreeProfile:
    def test_reports_maxima(self, square_matrix):
        text = degree_profile(square_matrix, 32)
        assert "max row" in text
        assert "rows:" in text
        assert "segments:" in text
        assert "#" in text

    def test_empty_matrix(self):
        text = degree_profile(CooMatrix.empty((4, 4)), 4)
        assert "no nonzeros" in text


class TestWindowColorChart:
    def test_marks_bounds_and_overhead(self, square_matrix):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        chart = window_color_chart(schedule, balanced)
        assert chart.count("w0") == 1
        assert "]" in chart or "#" in chart
        # One line per window plus the header.
        assert len(chart.splitlines()) == schedule.window_count + 1
