"""Tests for the aggregate report generator."""

from repro.eval.report import ClaimVerdict, judge_claims, render_markdown
from repro.eval.result import ExperimentResult


def _result(paper, measured):
    return ExperimentResult(
        experiment_id="x",
        title="demo",
        headers=["a"],
        rows=[[1]],
        paper_claims=paper,
        measured_claims=measured,
        notes=["scaled"],
    )


class TestJudging:
    def test_boolean_claims(self):
        verdicts = judge_claims(_result({"holds": True}, {"holds": True}))
        assert verdicts[0].verdict == "match"
        verdicts = judge_claims(_result({"holds": True}, {"holds": False}))
        assert verdicts[0].verdict == "deviates"

    def test_numeric_within_tolerance(self):
        verdicts = judge_claims(_result({"speedup": 411.0}, {"speedup": 460.0}))
        assert verdicts[0].verdict == "match"

    def test_numeric_beyond_tolerance(self):
        verdicts = judge_claims(_result({"speedup": 411.0}, {"speedup": 50.0}))
        assert verdicts[0].verdict == "deviates"

    def test_missing_measurement(self):
        verdicts = judge_claims(_result({"speedup": 411.0}, {}))
        assert verdicts[0].verdict == "n/a"

    def test_string_claims_informational(self):
        verdicts = judge_claims(
            _result({"crossover": "0.008"}, {"crossover": "not crossed"})
        )
        assert verdicts[0].verdict == "n/a"


class TestRendering:
    def test_markdown_structure(self):
        results = [("exp1", _result({"n": 1.0}, {"n": 1.1}), 0.5)]
        text = render_markdown(results)
        assert "# GUST reproduction report" in text
        assert "## exp1 — demo" in text
        assert "| claim | paper | measured | verdict |" in text
        assert "1 claims matched, 0 deviated" in text
        assert "_completed in 0.5s_" in text

    def test_cli_quick_report(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(["report", "--out", str(out), "--quick"])
        assert code == 0
        text = out.read_text()
        assert "# GUST reproduction report" in text
        assert "table5" in text
        assert "fig8" not in text  # skipped in quick mode
