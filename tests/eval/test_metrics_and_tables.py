"""Tests for evaluation metrics, table rendering, and figures."""

import pytest

from repro.eval.figures import log_bar, render_series
from repro.eval.metrics import energy_gain, geomean, speedup, wallclock_speedup
from repro.eval.result import ExperimentResult
from repro.eval.tables import format_cell, render_table
from repro.types import EnergyReport


class TestMetrics:
    def test_speedup(self):
        assert speedup(1000, 100) == 10.0
        assert speedup(100, 0) == float("inf")
        assert speedup(0, 0) == 1.0

    def test_wallclock_speedup_cross_clock(self):
        # 2x the cycles at 4x the clock is still 2x faster.
        assert wallclock_speedup(1000, 100e6, 2000, 400e6) == pytest.approx(2.0)

    def test_energy_gain(self):
        baseline = EnergyReport(1.0, 1.0, 1.0, 1.0)
        candidate = EnergyReport(0.5, 0.5, 0.5, 0.5)
        assert energy_gain(baseline, candidate) == pytest.approx(2.0)

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)


class TestTables:
    def test_format_cell_scales(self):
        assert format_cell(1234) == "1234"
        assert format_cell(123_456) == "123K"
        assert format_cell(12_345_678) == "12.3M"
        assert format_cell(0.5) == "0.5000"
        assert format_cell(1.5e-5) == "1.50e-05"
        assert format_cell(True) == "True"
        assert format_cell("text") == "text"

    def test_render_table_aligned(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 44]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_render_empty_rows(self):
        out = render_table(["x"], [])
        assert "x" in out


class TestFigures:
    def test_log_bar_range(self):
        assert len(log_bar(100.0, 1.0, 100.0)) == 40
        assert len(log_bar(1.0, 1.0, 100.0)) == 1
        assert log_bar(0.0, 1.0, 100.0) == ""

    def test_render_series(self):
        out = render_series(
            ["m1", "m2"],
            {"design": [1.0, 10.0], "other": [2.0, 20.0]},
            title="demo",
        )
        assert "demo" in out
        assert out.count("design") == 2


class TestExperimentResult:
    def test_render_includes_claims_and_notes(self):
        result = ExperimentResult(
            experiment_id="x",
            title="demo",
            headers=["a"],
            rows=[[1]],
            paper_claims={"metric": 10},
            measured_claims={"metric": 11},
            notes=["careful"],
        )
        text = result.render()
        assert "[x] demo" in text
        assert "paper=10" in text
        assert "measured=11" in text
        assert "note: careful" in text

    def test_missing_measured_claim_renders_dash(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            headers=["a"],
            rows=[],
            paper_claims={"only_paper": 1},
        )
        assert "measured=—" in result.render()
