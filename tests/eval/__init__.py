"""Test package (keeps basenames unique for pytest collection)."""
