"""Smoke tests: every experiment runs at reduced scale and is well-formed.

These use small scales/dimensions so the whole module stays fast; the
full-scale runs live in ``benchmarks/`` and EXPERIMENTS.md.
"""

import pytest

from repro.eval.experiments import (
    backend_throughput,
    bandwidth_provisioning,
    bound_validation,
    coloring_ablation,
    fig7_utilization,
    fig8_speedup,
    fig9_bandwidth,
    length_sweep,
    naive_crossover,
    scalability,
    structure_sensitivity,
    table1_qualities,
    table2_resources,
    table3_datasets,
    table4_serpens,
    table5_partitions,
)
from repro.eval.result import ExperimentResult


def _check(result: ExperimentResult):
    assert isinstance(result, ExperimentResult)
    assert result.rows, result.experiment_id
    for row in result.rows:
        assert len(row) == len(result.headers), result.experiment_id
    rendered = result.render()
    assert result.experiment_id in rendered
    return result


class TestTableExperiments:
    def test_table1(self):
        result = _check(table1_qualities.run(scale=96.0, length=64))
        assert "gmean util%" in result.headers[-1]

    def test_table2(self):
        result = _check(table2_resources.run())
        assert result.measured_claims["total W GUST-256"] == 56.9

    def test_table3(self):
        result = _check(table3_datasets.run(scale=128.0))
        assert len(result.rows) == 9

    def test_table4(self):
        result = _check(table4_serpens.run(scale=256.0))
        assert len(result.rows) == 9
        wins = result.measured_claims["GUST faster (of 9)"]
        assert 0 <= wins <= 9

    def test_table5(self):
        result = _check(table5_partitions.run())
        assert result.measured_claims["crossbar LUT @256"] == 756_000


class TestFigureExperiments:
    def test_fig7(self):
        result = _check(fig7_utilization.run(scale=96.0, length=64))
        gmean_row = result.rows[-1]
        assert gmean_row[0] == "G-Mean"

    def test_fig8(self):
        result = _check(
            fig8_speedup.run(scale=96.0, dim=512, densities=(0.005, 0.02))
        )
        assert "avg speedup GUST-256 EC/LB" in result.measured_claims

    def test_fig9(self):
        result = _check(fig9_bandwidth.run(scale=96.0))
        max_256 = result.measured_claims["maximum BW GUST-256 (GB/s)"]
        assert max_256 == pytest.approx(221.2, abs=0.5)


class TestClaimExperiments:
    def test_naive_crossover(self):
        result = _check(
            naive_crossover.run(dim=1024, densities=(0.002, 0.006, 0.012))
        )
        ratios = [row[3] for row in result.rows]
        assert ratios == sorted(ratios)  # monotone in density

    def test_bound_validation(self):
        result = _check(
            bound_validation.run(dim=1024, densities=(0.02,), length=128)
        )
        assert result.measured_claims["E[C] within Eq.9 bound"] is True

    def test_scalability(self):
        result = _check(
            scalability.run(
                matrices=("scircuit",), scale=96.0, total_length=64,
                ways=(1, 2),
            )
        )
        assert result.measured_claims["parallel shrinks crossbar"] is True

    def test_coloring_ablation(self):
        result = _check(
            coloring_ablation.run(
                matrices=("bcircuit",), scale=96.0, length=32
            )
        )
        assert result.measured_claims["euler matches lower bound exactly"]

    def test_length_sweep(self):
        result = _check(
            length_sweep.run(dim=512, lengths=(32, 64, 128))
        )
        assert result.measured_claims[
            "utilization falls with length (Eq. 11)"
        ] is True

    def test_structure_sensitivity(self):
        result = _check(
            structure_sensitivity.run(dim=1024, density=0.005, length=128)
        )
        assert len(result.rows) == 3

    def test_bandwidth_provisioning(self):
        result = _check(bandwidth_provisioning.run(scale=96.0))
        assert result.measured_claims["stall-free at U280's 460 GB/s"] is True

    def test_backend_throughput(self):
        result = _check(
            backend_throughput.run(dim=256, density=0.02, length=32,
                                   columns=3, repeats=2)
        )
        names = {row[0] for row in result.rows}
        assert {"legacy-scatter", "scatter", "bincount"} <= names
        assert result.measured_claims["auto bit-identical"] is True
