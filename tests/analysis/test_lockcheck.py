"""LockOrderMonitor: inversion detection, re-entrancy, dedup."""

import threading

import pytest

from repro.analysis import LockOrderError, LockOrderMonitor


def test_consistent_order_is_clean():
    monitor = LockOrderMonitor()
    a = monitor.wrap(threading.Lock(), "A")
    b = monitor.wrap(threading.Lock(), "B")
    for _ in range(3):
        with a:
            with b:
                pass
    assert monitor.violations == []
    monitor.assert_no_inversions()
    assert monitor.acquisitions == 6


def test_inversion_detected_without_deadlock():
    """A -> B then B -> A is flagged from the order graph alone, even
    though sequential execution never actually deadlocks."""
    monitor = LockOrderMonitor()
    a = monitor.wrap(threading.Lock(), "A")
    b = monitor.wrap(threading.Lock(), "B")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert len(monitor.violations) == 1
    assert "'A'" in monitor.violations[0]
    assert "'B'" in monitor.violations[0]
    with pytest.raises(LockOrderError, match="inversion"):
        monitor.assert_no_inversions()


def test_inversion_detected_across_threads():
    monitor = LockOrderMonitor()
    a = monitor.wrap(threading.Lock(), "A")
    b = monitor.wrap(threading.Lock(), "B")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    first = threading.Thread(target=forward)
    first.start()
    first.join()
    second = threading.Thread(target=backward)
    second.start()
    second.join()
    assert len(monitor.violations) == 1


def test_repeated_inversion_reported_once():
    monitor = LockOrderMonitor()
    a = monitor.wrap(threading.Lock(), "A")
    b = monitor.wrap(threading.Lock(), "B")
    for _ in range(5):
        with a:
            with b:
                pass
        with b:
            with a:
                pass
    assert len(monitor.violations) == 1


def test_reentrant_rlock_is_not_an_inversion():
    monitor = LockOrderMonitor()
    lock = monitor.wrap(threading.RLock(), "R")
    with lock:
        with lock:
            pass
    assert monitor.violations == []
    assert monitor.acquisitions == 2


def test_three_lock_cycle_detected():
    """A->B, B->C, then C->A closes a cycle through the whole graph."""
    monitor = LockOrderMonitor()
    a = monitor.wrap(threading.Lock(), "A")
    b = monitor.wrap(threading.Lock(), "B")
    c = monitor.wrap(threading.Lock(), "C")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:
            pass
    assert len(monitor.violations) == 1


def test_explicit_acquire_release_interface():
    monitor = LockOrderMonitor()
    lock = monitor.wrap(threading.Lock(), "L")
    assert lock.acquire() is True
    assert lock.locked()
    lock.release()
    assert not lock.locked()
    assert monitor.acquisitions == 1
