"""Known-good fixture: an allclose-grade backend may use reduceat."""

import numpy as np

from repro.core.backends.base import BackendCapabilities

capabilities = BackendCapabilities(
    bit_identical=False,
    supports_block=True,
    thread_safe=True,
    probed=False,
)


def segment_sums(products, starts):
    return np.add.reduceat(products, starts)
