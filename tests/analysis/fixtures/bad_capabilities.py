"""Known-bad fixture: positional and partial capability declarations."""

from repro.core.backends.base import BackendCapabilities

POSITIONAL = BackendCapabilities(True, True, True, False)
PARTIAL = BackendCapabilities(
    bit_identical=True,
    supports_block=True,
)
