"""Known-good fixture: a consumed suppression silences R1 without W1."""

import numpy as np


def segment_sums(products, starts):
    return np.add.reduceat(products, starts)  # lint: disable=R1
