"""Known-good fixture: lock discipline respected on every write path."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0  # guarded-by: _lock

    def record(self, n):
        with self._lock:
            self._total += n

    def _bump(self, n):  # guarded-by: _lock
        self._total += n
