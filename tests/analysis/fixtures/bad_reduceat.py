"""Known-bad fixture: order-sensitive reduction outside a backend."""

import numpy as np


def segment_sums(products, starts):
    return np.add.reduceat(products, starts)
