"""Known-bad fixture: guarded fields written outside their lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0  # guarded-by: _lock
        self._batches = 0

    def record(self, n):
        self._total += n

    def record_batch(self):
        with self._lock:
            self._batches += 1

    def reset(self):
        self._batches = 0
