"""Known-bad fixture: a suppression that matches nothing (W1)."""

TOTAL = 0  # lint: disable=R1
