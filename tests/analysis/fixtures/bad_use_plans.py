"""Known-bad fixture: every removed-shim spelling rule R3 flags."""


def build(pipeline_cls, matrix):
    pipeline = pipeline_cls(16, use_plans=True)
    apply_a = pipeline.executor(matrix)
    return apply_a, pipeline.use_plans
