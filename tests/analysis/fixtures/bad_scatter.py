"""Known-bad fixture: direct scatter replay outside the registry."""

import numpy as np


def replay(y, rows, products):
    np.add.at(y, rows, products)
    return y
