"""Rule R9: deterministic-kernel hygiene in core/graph/serve paths."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_file

UNSTABLE_ARGSORT = """\
import numpy as np

def order(rows):
    return np.argsort(rows)
"""

UNSTABLE_SORT = """\
import numpy as np

def canon(values):
    return np.sort(values)
"""

METHOD_ARGSORT = """\
def order(rows):
    return rows.argsort()
"""

STABLE_OK = """\
import numpy as np

def order(rows):
    return np.argsort(rows, kind="stable")

def canon(values):
    return np.sort(values, kind="mergesort")
"""

LEXSORT_OK = """\
import numpy as np

def order(cols, rows):
    return np.lexsort((cols, rows))
"""

LIST_SORT_OK = """\
def oldest_first(entries):
    entries.sort()
    return entries
"""

SET_TO_ARRAY = """\
import numpy as np

def dedupe(rows):
    return np.array(list(set(rows)))
"""

DICT_KEYS_TO_ARRAY = """\
import numpy as np

def keys_of(table):
    return np.fromiter(table.keys(), dtype=np.int64)
"""

SET_LITERAL_TO_ARRAY = """\
import numpy as np

def fixed():
    return np.asarray({3, 1, 2})
"""

SORTED_SET_OK = """\
import numpy as np

def dedupe(rows):
    return np.array(sorted(set(rows)))
"""

SUPPRESSED = """\
import numpy as np

def order(rows):
    return np.argsort(rows)  # lint: disable=R9 — ties impossible here
"""


def _lint(tmp_path: Path, relative: str, code: str):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code, encoding="utf-8")
    return [f for f in lint_file(path) if f.rule == "R9"]


class TestUnstableSorts:
    @pytest.mark.parametrize(
        "code,line,name",
        [
            (UNSTABLE_ARGSORT, 4, "np.argsort"),
            (UNSTABLE_SORT, 4, "np.sort"),
            (METHOD_ARGSORT, 2, ".argsort()"),
        ],
        ids=["np-argsort", "np-sort", "method-argsort"],
    )
    def test_flagged(self, tmp_path, code, line, name):
        findings = _lint(tmp_path, "core/plan.py", code)
        assert [(f.rule, f.line) for f in findings] == [("R9", line)]
        assert name in findings[0].message

    @pytest.mark.parametrize(
        "code",
        [STABLE_OK, LEXSORT_OK, LIST_SORT_OK],
        ids=["stable-kinds", "lexsort-inherently-stable", "list-sort"],
    )
    def test_compliant(self, tmp_path, code):
        assert _lint(tmp_path, "core/plan.py", code) == []


class TestUnorderedIterationIntoArrays:
    @pytest.mark.parametrize(
        "code,line",
        [
            (SET_TO_ARRAY, 4),
            (DICT_KEYS_TO_ARRAY, 4),
            (SET_LITERAL_TO_ARRAY, 4),
        ],
        ids=["set-call", "dict-keys", "set-literal"],
    )
    def test_flagged(self, tmp_path, code, line):
        findings = _lint(tmp_path, "serve/batcher.py", code)
        assert [(f.rule, f.line) for f in findings] == [("R9", line)]
        assert "sorted(...)" in findings[0].message

    def test_sorted_wrap_canonicalizes(self, tmp_path):
        assert _lint(tmp_path, "serve/batcher.py", SORTED_SET_OK) == []


class TestScopeAndEscape:
    @pytest.mark.parametrize(
        "relative",
        ["core/plan.py", "graph/coloring.py", "serve/registry.py"],
        ids=["core", "graph", "serve"],
    )
    def test_scoped_segments(self, tmp_path, relative):
        assert _lint(tmp_path, relative, UNSTABLE_ARGSORT) != []

    @pytest.mark.parametrize(
        "relative",
        ["eval/metrics.py", "accelerators/gust.py", "top.py"],
        ids=["eval", "accelerators", "top-level"],
    )
    def test_unscoped_segments(self, tmp_path, relative):
        assert _lint(tmp_path, relative, UNSTABLE_ARGSORT) == []

    def test_suppression(self, tmp_path):
        path = tmp_path / "core" / "plan.py"
        path.parent.mkdir(parents=True)
        path.write_text(SUPPRESSED, encoding="utf-8")
        assert lint_file(path) == []


def test_repo_sensitive_paths_are_r9_clean():
    """Every shipped plan-order-sensitive module passes its own rule."""
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    targets = [
        path
        for segment in ("core", "graph", "serve")
        for path in sorted((src / segment).rglob("*.py"))
    ]
    assert targets, "core/graph/serve sources not found"
    for path in targets:
        findings = [f for f in lint_file(path) if f.rule == "R9"]
        assert findings == [], f"{path} has R9 findings: {findings}"
