"""The incremental findings cache: warm runs re-parse nothing unchanged."""

from __future__ import annotations

import json

from repro.analysis import lint_paths

TREE = {
    "repro/core/plan.py": (
        "import numpy as np\n"
        "\n"
        "def order(rows):\n"
        "    return np.argsort(rows)\n"
    ),
    "repro/graph/coloring.py": "def color(edges):\n    return edges\n",
    "repro/errors.py": "class ScheduleError(Exception):\n    pass\n",
}


def _run(root, cache_path, **kwargs):
    return lint_paths([root], cache_path=cache_path, **kwargs)


def test_warm_run_parses_nothing_and_agrees(write_tree, tmp_path):
    root = write_tree(TREE)
    cache_path = tmp_path / "cache" / "lint.json"
    cold = _run(root, cache_path)
    assert cold.files_parsed == cold.files_checked > 0
    assert cold.cache_hits == 0

    warm = _run(root, cache_path)
    assert warm.files_parsed == 0
    assert warm.cache_hits == warm.files_checked == cold.files_checked
    assert warm.findings == cold.findings  # including the R9 finding


def test_editing_one_file_reparses_only_it(write_tree, tmp_path):
    root = write_tree(TREE)
    cache_path = tmp_path / "cache" / "lint.json"
    cold = _run(root, cache_path)

    plan = root / "repro" / "core" / "plan.py"
    plan.write_text(
        TREE["repro/core/plan.py"].replace(
            "np.argsort(rows)", 'np.argsort(rows, kind="stable")'
        ),
        encoding="utf-8",
    )
    edited = _run(root, cache_path)
    assert edited.files_parsed == 1
    assert edited.cache_hits == cold.files_checked - 1
    # The stale cached finding must not survive the edit.
    assert [f for f in edited.findings if f.rule == "R9"] == []


def test_cross_file_rules_rerun_on_cached_models(write_tree, tmp_path):
    # Phase 2 is never cached: a layer violation introduced by editing
    # one file must surface even though every other file is a cache hit.
    root = write_tree(TREE)
    cache_path = tmp_path / "cache" / "lint.json"
    _run(root, cache_path)

    coloring = root / "repro" / "graph" / "coloring.py"
    coloring.write_text(
        "from repro.core.plan import order\n", encoding="utf-8"
    )
    report = _run(root, cache_path)
    assert report.files_parsed == 1
    assert any(f.rule == "R7" for f in report.findings)


def test_corrupt_cache_degrades_to_cold_run(write_tree, tmp_path):
    root = write_tree(TREE)
    cache_path = tmp_path / "cache" / "lint.json"
    cold = _run(root, cache_path)
    cache_path.write_text("{not json", encoding="utf-8")
    rerun = _run(root, cache_path)
    assert rerun.files_parsed == rerun.files_checked
    assert rerun.findings == cold.findings


def test_cache_disabled_always_parses(write_tree, tmp_path):
    root = write_tree(TREE)
    first = lint_paths([root], use_cache=False)
    second = lint_paths([root], use_cache=False)
    assert first.files_parsed == second.files_parsed == first.files_checked


def test_cache_file_is_versioned_json(write_tree, tmp_path):
    root = write_tree(TREE)
    cache_path = tmp_path / "cache" / "lint.json"
    _run(root, cache_path)
    payload = json.loads(cache_path.read_text(encoding="utf-8"))
    assert "ruleset" in payload
    assert len(payload["entries"]) == 3 + 3  # sources + three __init__.py


def test_parse_error_files_are_cached_too(write_tree, tmp_path):
    root = write_tree(dict(TREE, **{"repro/broken.py": "def f(:\n"}))
    cache_path = tmp_path / "cache" / "lint.json"
    cold = _run(root, cache_path)
    assert any(f.rule == "E1" for f in cold.findings)
    warm = _run(root, cache_path)
    assert warm.files_parsed == 0
    assert warm.findings == cold.findings
