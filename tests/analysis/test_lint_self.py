"""Self-check: the live tree is clean under the strictest settings.

This is the test that makes the contract checker a contract: any change
that introduces an order-sensitive reduction outside a declared backend,
an unguarded write to a lock-guarded field, a resurrected shim call
site, or a partial capability declaration fails the tier-1 suite, not
just the CI lint job.
"""

from repro.analysis import lint_paths
from repro.cli import main


def test_live_tree_is_strict_clean():
    report = lint_paths()
    assert report.files_checked > 50
    assert report.findings == (), report.render()


def test_cli_default_strict_exit_zero(capsys):
    assert main(["lint", "--strict"]) == 0
    assert "0 errors, 0 warnings" in capsys.readouterr().out
