"""Self-check: the live tree is clean under the strictest settings.

This is the test that makes the contract checker a contract: any change
that introduces an order-sensitive reduction outside a declared
backend, an unguarded write to a lock-guarded field, a resurrected shim
call site, a partial capability declaration, a layering violation or
import cycle (R7), an unmanifested API change (R8), or an unstable sort
on the plan path (R9) fails the tier-1 suite, not just the CI lint job.
"""

from pathlib import Path

from repro.analysis import build_model, lint_paths
from repro.analysis.api_drift import (
    build_manifest,
    default_manifest_path,
    render_manifest,
)
from repro.analysis.runner import default_target, iter_python_files
from repro.cli import main


def test_live_tree_is_strict_clean():
    report = lint_paths(use_cache=False)
    assert report.files_checked > 50
    assert report.findings == (), report.render()


def test_cli_default_strict_exit_zero(capsys):
    assert main(["lint", "--strict", "--no-cache"]) == 0
    assert "0 errors, 0 warnings" in capsys.readouterr().out


def test_api_manifest_round_trips_with_zero_diff():
    """`repro lint --update-api` on the unchanged tree is a no-op.

    The manifest is checked in; if this fails, a public signature
    changed without `--update-api` being run (and reviewed).
    """
    manifest_path = default_manifest_path()
    assert manifest_path.exists(), "api_manifest.json is not checked in"
    model = build_model(iter_python_files([default_target()]))
    regenerated = render_manifest(build_manifest(model))
    assert regenerated == manifest_path.read_text(encoding="utf-8")


def test_warm_cache_reparses_nothing(tmp_path):
    """Second run over the unchanged live tree restores every file from
    the incremental cache: zero parses, byte-identical verdicts."""
    cache_path = tmp_path / "lintcache.json"
    cold = lint_paths(cache_path=cache_path)
    assert cold.files_parsed == cold.files_checked
    warm = lint_paths(cache_path=cache_path)
    assert warm.files_parsed == 0
    assert warm.cache_hits == warm.files_checked == cold.files_checked
    assert warm.findings == cold.findings == ()


def test_machine_checked_docstring_contracts():
    """The contracts R7 now enforces really are the documented ones:
    the analysis package must not (and does not) import repro.core, and
    obs/faults import nothing outside the stdlib + repro.errors."""
    from repro.analysis.layers import RESTRICTED, segment_of
    from repro.analysis.project import STDLIB_MODULES

    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    model = build_model(iter_python_files([src]))
    restricted_modules = [
        info
        for info in model.modules.values()
        if segment_of(info.module) in RESTRICTED
    ]
    assert len(restricted_modules) >= 10  # obs + faults + analysis
    for info in restricted_modules:
        for raw in info.raw_imports:
            if raw.type_checking or raw.level > 0:
                continue
            top = raw.module.split(".", 1)[0]
            if not top or top in STDLIB_MODULES:
                continue
            assert top == "repro", (info.module, raw.module)
