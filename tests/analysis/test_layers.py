"""Rule R7: layer map, restricted packages, cycle detection.

These are the contracts that used to live in docstrings — "this package
must never import ``repro.core``", "stdlib-only" — seeded here as
synthetic violations in tmp trees, each yielding exactly the expected
R7 finding.
"""

from __future__ import annotations

from repro.analysis import lint_paths


def _r7(root, **kwargs):
    report = lint_paths([root], use_cache=False, **kwargs)
    return [f for f in report.findings if f.rule == "R7"]


class TestLayerOrdering:
    def test_graph_importing_core_is_flagged(self, write_tree):
        root = write_tree(
            {
                "repro/graph/coloring.py": (
                    "from repro.core.plan import ExecutionPlan\n"
                ),
                "repro/core/plan.py": "class ExecutionPlan:\n    pass\n",
            }
        )
        findings = _r7(root)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path.endswith("coloring.py")
        assert finding.line == 1
        assert "layering violation" in finding.message
        assert "'graph' (layer 1)" in finding.message
        assert "'core', layer 2" in finding.message

    def test_higher_layer_importing_lower_is_fine(self, write_tree):
        root = write_tree(
            {
                "repro/serve/server.py": (
                    "from repro.core.plan import ExecutionPlan\n"
                    "from repro.errors import ServeError\n"
                ),
                "repro/core/plan.py": "class ExecutionPlan:\n    pass\n",
                "repro/errors.py": "class ServeError(Exception):\n    pass\n",
            }
        )
        assert _r7(root) == []

    def test_type_checking_import_is_exempt(self, write_tree):
        root = write_tree(
            {
                "repro/graph/coloring.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.core.plan import ExecutionPlan\n"
                ),
                "repro/core/plan.py": "class ExecutionPlan:\n    pass\n",
            }
        )
        assert _r7(root) == []

    def test_lazy_layer_violation_still_flagged(self, write_tree):
        # Deferring the import dodges the load-time cycle check, not the
        # architecture: graph must not depend on core at any time.
        root = write_tree(
            {
                "repro/graph/coloring.py": (
                    "def compile_it():\n"
                    "    from repro.core.plan import ExecutionPlan\n"
                    "    return ExecutionPlan\n"
                ),
                "repro/core/plan.py": "class ExecutionPlan:\n    pass\n",
            }
        )
        findings = _r7(root)
        assert [f.line for f in findings] == [2]

    def test_suppression_consumes_the_finding(self, write_tree):
        root = write_tree(
            {
                "repro/graph/coloring.py": (
                    "from repro.core.plan import ExecutionPlan"
                    "  # lint: disable=R7\n"
                ),
                "repro/core/plan.py": "class ExecutionPlan:\n    pass\n",
            }
        )
        report = lint_paths([root], use_cache=False)
        assert report.findings == ()

    def test_foreign_root_package_is_not_layer_checked(self, write_tree):
        # The layer map describes the repro package; an arbitrary tree
        # with coincidental segment names only gets cycle detection.
        root = write_tree(
            {
                "other/graph/x.py": "from other.core.y import Z\n",
                "other/core/y.py": "class Z:\n    pass\n",
            }
        )
        assert _r7(root) == []


class TestRestrictedPackages:
    def test_analysis_importing_core_is_flagged(self, write_tree):
        # The findings.py docstring contract, machine-checked: the
        # analysis package must never import repro.core.
        root = write_tree(
            {
                "repro/analysis/evil.py": (
                    "from repro.core.plan import ExecutionPlan\n"
                ),
                "repro/core/plan.py": "class ExecutionPlan:\n    pass\n",
            }
        )
        findings = _r7(root)
        assert len(findings) == 1
        assert "restricted package 'analysis'" in findings[0].message
        assert "repro.core" in findings[0].message

    def test_obs_importing_numpy_is_flagged(self, write_tree):
        # The stdlib-only contract for the observability seam.
        root = write_tree(
            {"repro/obs/fancy.py": "import numpy as np\n"}
        )
        findings = _r7(root)
        assert len(findings) == 1
        assert "restricted package 'obs'" in findings[0].message
        assert "numpy" in findings[0].message

    def test_faults_importing_serve_is_flagged(self, write_tree):
        root = write_tree(
            {
                "repro/faults/plans.py": (
                    "from repro.serve.server import SpmvServer\n"
                ),
                "repro/serve/server.py": "class SpmvServer:\n    pass\n",
            }
        )
        findings = _r7(root)
        assert any("restricted package 'faults'" in f.message for f in findings)

    def test_errors_and_own_package_and_stdlib_allowed(self, write_tree):
        root = write_tree(
            {
                "repro/obs/metrics.py": (
                    "import json\n"
                    "import threading\n"
                    "from repro.errors import MetricsError\n"
                    "from repro.obs.clock import monotonic\n"
                ),
                "repro/obs/clock.py": "def monotonic():\n    return 0.0\n",
                "repro/errors.py": "class MetricsError(Exception):\n    pass\n",
            }
        )
        assert _r7(root) == []


class TestCycles:
    def test_load_time_cycle_is_fatal(self, write_tree):
        root = write_tree(
            {
                "repro/core/a.py": "from repro.core.b import B\nclass A:\n    pass\n",
                "repro/core/b.py": "from repro.core.a import A\nclass B:\n    pass\n",
            }
        )
        findings = _r7(root)
        assert len(findings) == 1
        message = findings[0].message
        assert "load-time import cycle" in message
        assert "repro.core.a -> repro.core.b -> repro.core.a" in message
        assert not findings[0].warning

    def test_cycle_broken_by_lazy_import_is_clean(self, write_tree):
        # The sanctioned fix (core.store <-> core.cache in the live
        # tree): defer one edge into the function that needs it.
        root = write_tree(
            {
                "repro/core/a.py": (
                    "from repro.core.b import B\n"
                    "def use():\n    return B\n"
                ),
                "repro/core/b.py": (
                    "class B:\n    pass\n"
                    "def back():\n"
                    "    from repro.core.a import use\n"
                    "    return use\n"
                ),
            }
        )
        assert _r7(root) == []

    def test_cycle_in_foreign_tree_still_fatal(self, write_tree):
        # Cycles are fatal anywhere, layer map or not.
        root = write_tree(
            {
                "other/a.py": "import other.b\n",
                "other/b.py": "import other.a\n",
            }
        )
        findings = _r7(root)
        assert len(findings) == 1
        assert "load-time import cycle" in findings[0].message

    def test_three_module_cycle_reported_once(self, write_tree):
        root = write_tree(
            {
                "repro/core/a.py": "import repro.core.b\n",
                "repro/core/b.py": "import repro.core.c\n",
                "repro/core/c.py": "import repro.core.a\n",
            }
        )
        findings = _r7(root)
        assert len(findings) == 1
        assert (
            "repro.core.a -> repro.core.b -> repro.core.c -> repro.core.a"
            in findings[0].message
        )
