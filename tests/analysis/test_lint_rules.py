"""Every lint rule against known-good/bad fixtures: exact IDs and lines."""

from pathlib import Path

import pytest

from repro.analysis import lint_file
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture -> expected (rule, line, is_warning) triples, sorted by line.
EXPECTED = {
    "bad_reduceat.py": [("R1", 7, False)],
    "bad_scatter.py": [("R1", 7, False)],
    "good_reduceat_backend.py": [],
    "bad_lock.py": [("R2", 13, False), ("R2", 20, False)],
    "good_lock.py": [],
    "bad_use_plans.py": [
        ("R3", 5, False),
        ("R3", 6, False),
        ("R3", 7, False),
    ],
    "bad_capabilities.py": [("R4", 5, False), ("R4", 6, False)],
    "suppressed_ok.py": [],
    "bad_unused_suppression.py": [("W1", 3, True)],
}


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_fixture_findings(name):
    found = [
        (f.rule, f.line, f.warning) for f in lint_file(FIXTURES / name)
    ]
    assert found == EXPECTED[name]


@pytest.mark.parametrize(
    "name",
    sorted(n for n, expected in EXPECTED.items() if expected),
)
def test_cli_fails_each_bad_fixture(name, capsys):
    """``repro lint --strict <bad fixture>`` exits non-zero and names the
    rule at its ``file:line``."""
    exit_code = main(["lint", "--strict", str(FIXTURES / name)])
    assert exit_code == 1
    output = capsys.readouterr().out
    for rule, line, _ in EXPECTED[name]:
        assert f"{FIXTURES / name}:{line}: {rule}" in output


def test_cli_passes_good_fixtures(capsys):
    good = [
        str(FIXTURES / n) for n, expected in EXPECTED.items() if not expected
    ]
    assert main(["lint", "--strict", *good]) == 0
    assert "0 errors, 0 warnings" in capsys.readouterr().out


def test_suppression_is_consumed_not_warned(capsys):
    """A suppression that eats a real finding must not re-surface as W1."""
    findings = lint_file(FIXTURES / "suppressed_ok.py")
    assert findings == []


def test_parse_error_reported_as_finding(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n", encoding="utf-8")
    findings = lint_file(broken)
    assert [f.rule for f in findings] == ["E1"]
    assert not findings[0].warning


def test_lock_rule_names_class_method_and_lock():
    messages = [f.message for f in lint_file(FIXTURES / "bad_lock.py")]
    assert any(
        "'_total'" in m and "'_lock'" in m and "Counter.record" in m
        for m in messages
    )
    assert any(
        "'_batches'" in m and "Counter.reset" in m for m in messages
    )


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule in ("R1", "R2", "R3", "R4", "W1"):
        assert rule in output
