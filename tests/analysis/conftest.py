"""Shared helpers for the analyzer tests: tmp-path package trees."""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture
def write_tree(tmp_path):
    """Materialize ``{relative_path: source}`` under ``tmp_path``.

    Every directory that receives a ``.py`` file automatically gets an
    ``__init__.py`` (unless one is given explicitly), so written trees
    are importable packages and module-name derivation sees real
    package roots.  Returns ``tmp_path``.
    """

    def _write(files: dict[str, str]) -> Path:
        for relative, content in files.items():
            path = tmp_path / relative
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content, encoding="utf-8")
            parent = path.parent
            while parent != tmp_path:
                init = parent / "__init__.py"
                if not init.exists():
                    init.write_text("", encoding="utf-8")
                parent = parent.parent
        return tmp_path

    return _write
