"""Phase 1: module naming, import classification, API extraction."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import build_model
from repro.analysis.project import (
    extract_api,
    extract_imports,
    module_name_for,
)


class TestModuleNaming:
    def test_package_walk(self, write_tree):
        root = write_tree({"repro/core/plan.py": "X = 1\n"})
        assert (
            module_name_for(root / "repro" / "core" / "plan.py")
            == "repro.core.plan"
        )

    def test_package_init_is_the_package(self, write_tree):
        root = write_tree({"repro/core/plan.py": "X = 1\n"})
        assert module_name_for(root / "repro" / "__init__.py") == "repro"

    def test_loose_file_is_its_stem(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("X = 1\n", encoding="utf-8")
        assert module_name_for(loose) == "script"


class TestImportExtraction:
    def test_lazy_and_type_checking_classification(self):
        tree = ast.parse(
            "from typing import TYPE_CHECKING\n"
            "import repro.core.plan\n"
            "if TYPE_CHECKING:\n"
            "    from repro.core.load_balance import BalancedMatrix\n"
            "def go():\n"
            "    from repro.core import cache\n"
        )
        records = {r.module: r for r in extract_imports(tree)}
        assert not records["repro.core.plan"].lazy
        assert not records["repro.core.plan"].type_checking
        assert records["repro.core.load_balance"].type_checking
        assert records["repro.core"].lazy

    def test_relative_imports_resolve_against_package(self, write_tree):
        root = write_tree(
            {
                "pkg/sub/a.py": "from . import b\nfrom ..top import c\n",
                "pkg/sub/b.py": "",
                "pkg/top.py": "c = 1\n",
            }
        )
        model = build_model(sorted(root.rglob("*.py")))
        edges = {
            (e.importer, e.target)
            for e in model.edges()
            if e.importer == "pkg.sub.a"
        }
        assert ("pkg.sub.a", "pkg.sub.b") in edges
        assert ("pkg.sub.a", "pkg.top") in edges

    def test_from_import_resolves_to_submodule_not_init(self, write_tree):
        root = write_tree(
            {
                "pkg/user.py": "from pkg.core import plan\n",
                "pkg/core/plan.py": "",
            }
        )
        model = build_model(sorted(root.rglob("*.py")))
        targets = {e.target for e in model.edges() if e.importer == "pkg.user"}
        assert "pkg.core.plan" in targets
        assert "pkg.core" not in targets


class TestApiExtraction:
    def test_function_signature_rendering(self):
        api = extract_api(
            ast.parse(
                "def compile(matrix, *, backend='auto', jobs: int = 1)"
                " -> str:\n    pass\n"
            )
        )
        assert api["compile"]["signature"] == (
            "(matrix, *, backend='auto', jobs: int = 1) -> str"
        )

    def test_class_descriptor(self):
        api = extract_api(
            ast.parse(
                "class Cache(Base):\n"
                "    size: int\n"
                "    _hidden: int\n"
                "    def __init__(self, size=8):\n"
                "        pass\n"
                "    def lookup(self, key):\n"
                "        pass\n"
                "    def _internal(self):\n"
                "        pass\n"
            )
        )
        descriptor = api["Cache"]
        assert descriptor["bases"] == ["Base"]
        assert descriptor["fields"] == {"size": "int"}
        assert set(descriptor["methods"]) == {"__init__", "lookup"}

    def test_private_symbols_excluded_all_reexports_included(self):
        api = extract_api(
            ast.parse(
                "__all__ = ['exported', 'helper']\n"
                "def _private():\n    pass\n"
                "def helper():\n    pass\n"
            )
        )
        assert "_private" not in api
        assert api["exported"]["kind"] == "name"
        assert api["helper"]["kind"] == "function"
