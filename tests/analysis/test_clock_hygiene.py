"""Rule R6 (clock hygiene): scope, verdicts, escape hatch, self-clean.

R6 is path-scoped — it applies under ``core`` and ``serve`` segments
with ``obs`` exempt — so these tests build small trees under
``tmp_path`` instead of using the flat fixtures directory.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_file

CALL = """\
import time

def now():
    return time.perf_counter()
"""

DEFAULT_SEAM = """\
import time

class Batcher:
    def __init__(self, clock=None):
        self.clock = clock or time.monotonic
"""

FROM_IMPORT = """\
from time import perf_counter, sleep

def now():
    return perf_counter()
"""

WALLCLOCK = """\
import time

def stamp():
    return time.time()
"""

SLEEP_ONLY = """\
import time

def backoff(delay):
    time.sleep(delay)
"""

OBS_SEAM = """\
from repro.obs import clock as _obs_clock

def now():
    return _obs_clock.monotonic()
"""

SUPPRESSED = """\
import time

def now():
    return time.perf_counter()  # lint: disable=R6 — calibration baseline
"""


def _lint(tmp_path: Path, relative: str, code: str):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code, encoding="utf-8")
    return lint_file(path)


class TestVerdicts:
    @pytest.mark.parametrize(
        "code,line,reference",
        [
            (CALL, 4, "time.perf_counter"),
            (DEFAULT_SEAM, 5, "time.monotonic"),
            (WALLCLOCK, 4, "time.time"),
            (FROM_IMPORT, 1, "from time import perf_counter"),
        ],
        ids=["call", "clock-or-default", "wallclock", "from-import"],
    )
    def test_direct_clock_references_flagged(
        self, tmp_path, code, line, reference
    ):
        findings = _lint(tmp_path, "serve/worker.py", code)
        assert [(f.rule, f.line, f.warning) for f in findings] == [
            ("R6", line, False)
        ]
        assert repr(reference) in findings[0].message

    @pytest.mark.parametrize(
        "code",
        [SLEEP_ONLY, OBS_SEAM],
        ids=["time-sleep-allowed", "obs-clock-seam"],
    )
    def test_compliant_timing_passes(self, tmp_path, code):
        assert _lint(tmp_path, "serve/worker.py", code) == []

    def test_escape_hatch_suppresses_without_w1(self, tmp_path):
        assert _lint(tmp_path, "serve/worker.py", SUPPRESSED) == []


class TestScope:
    @pytest.mark.parametrize(
        "relative",
        ["core/pipeline.py", "serve/batcher.py", "a/core/b/util.py"],
        ids=["core", "serve", "nested-core"],
    )
    def test_scoped_paths_flagged(self, tmp_path, relative):
        findings = _lint(tmp_path, relative, CALL)
        assert [f.rule for f in findings] == ["R6"]

    @pytest.mark.parametrize(
        "relative",
        ["graph/coloring.py", "cli.py", "bench/run.py"],
        ids=["graph", "top-level", "bench"],
    )
    def test_other_paths_out_of_scope(self, tmp_path, relative):
        assert _lint(tmp_path, relative, CALL) == []

    def test_obs_segment_is_exempt(self, tmp_path):
        # The seam itself wraps time.perf_counter by design.
        assert _lint(tmp_path, "serve/obs/clock.py", CALL) == []


def test_repo_core_and_serve_are_r6_clean():
    """The shipped timed paths must satisfy their own hygiene rule:
    every core/serve timestamp flows through the obs clock seam."""
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    targets = sorted((src / "core").rglob("*.py")) + sorted(
        (src / "serve").rglob("*.py")
    )
    assert targets, "core/serve sources not found"
    for path in targets:
        findings = [
            f for f in lint_file(path) if not f.warning and f.rule == "R6"
        ]
        assert findings == [], f"{path} has R6 errors: {findings}"
