"""Rule R8: public-API drift against the checked-in manifest."""

from __future__ import annotations

import json

from repro.analysis import build_model, lint_paths
from repro.analysis.api_drift import build_manifest, render_manifest

TREE = {
    "pkg/api.py": (
        "def compile(matrix, *, backend='auto'):\n"
        "    pass\n"
        "\n"
        "class Handle:\n"
        "    name: str\n"
        "    def matvec(self, x):\n"
        "        pass\n"
    ),
}


def _manifest_for(root, tmp_path):
    model = build_model(sorted(root.rglob("*.py")))
    manifest_path = tmp_path / "manifest.json"
    manifest_path.write_text(
        render_manifest(build_manifest(model)), encoding="utf-8"
    )
    return manifest_path


def _r8(root, manifest_path):
    report = lint_paths(
        [root], use_cache=False, api_manifest=manifest_path
    )
    return [f for f in report.findings if f.rule == "R8"]


def test_unchanged_surface_is_clean(write_tree, tmp_path):
    root = write_tree(TREE)
    manifest_path = _manifest_for(root, tmp_path)
    assert _r8(root, manifest_path) == []


def test_signature_change_is_flagged_at_the_def(write_tree, tmp_path):
    root = write_tree(TREE)
    manifest_path = _manifest_for(root, tmp_path)
    (root / "pkg" / "api.py").write_text(
        TREE["pkg/api.py"].replace(
            "backend='auto'", "backend='auto', jobs=1"
        ),
        encoding="utf-8",
    )
    findings = _r8(root, manifest_path)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path.endswith("api.py")
    assert finding.line == 1
    assert "signature of pkg.api.compile drifted" in finding.message
    assert "--update-api" in finding.message


def test_removed_symbol_is_flagged(write_tree, tmp_path):
    root = write_tree(TREE)
    manifest_path = _manifest_for(root, tmp_path)
    (root / "pkg" / "api.py").write_text(
        "class Handle:\n"
        "    name: str\n"
        "    def matvec(self, x):\n"
        "        pass\n",
        encoding="utf-8",
    )
    findings = _r8(root, manifest_path)
    assert len(findings) == 1
    assert "pkg.api.compile was removed" in findings[0].message


def test_added_symbol_is_flagged_until_manifested(write_tree, tmp_path):
    root = write_tree(TREE)
    manifest_path = _manifest_for(root, tmp_path)
    (root / "pkg" / "api.py").write_text(
        TREE["pkg/api.py"] + "\ndef brand_new():\n    pass\n",
        encoding="utf-8",
    )
    findings = _r8(root, manifest_path)
    assert len(findings) == 1
    assert "new public symbol pkg.api.brand_new" in findings[0].message
    assert findings[0].line == 9  # pinned to the def


def test_method_change_inside_class_is_drift(write_tree, tmp_path):
    root = write_tree(TREE)
    manifest_path = _manifest_for(root, tmp_path)
    (root / "pkg" / "api.py").write_text(
        TREE["pkg/api.py"].replace(
            "def matvec(self, x):", "def matvec(self, x, out=None):"
        ),
        encoding="utf-8",
    )
    findings = _r8(root, manifest_path)
    assert len(findings) == 1
    assert "signature of pkg.api.Handle drifted" in findings[0].message


def test_private_modules_are_not_manifested(write_tree, tmp_path):
    root = write_tree(
        dict(TREE, **{"pkg/_internal.py": "def anything(x, y):\n    pass\n"})
    )
    manifest_path = _manifest_for(root, tmp_path)
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    assert "pkg._internal" not in manifest
    # ... so churning the private module is not drift.
    (root / "pkg" / "_internal.py").write_text(
        "def anything(x, y, z):\n    pass\n", encoding="utf-8"
    )
    assert _r8(root, manifest_path) == []


def test_missing_manifest_is_one_finding(write_tree, tmp_path):
    root = write_tree(TREE)
    findings = _r8(root, tmp_path / "nonexistent.json")
    assert len(findings) == 1
    assert "missing or unreadable" in findings[0].message


def test_update_api_round_trips_to_zero_diff(write_tree, tmp_path):
    root = write_tree(TREE)
    manifest_path = tmp_path / "manifest.json"
    report = lint_paths(
        [root],
        use_cache=False,
        api_manifest=manifest_path,
        update_api=True,
    )
    assert [f.rule for f in report.findings] == []
    first = manifest_path.read_bytes()
    # Regenerating from the unchanged tree must be byte-identical.
    lint_paths(
        [root],
        use_cache=False,
        api_manifest=manifest_path,
        update_api=True,
    )
    assert manifest_path.read_bytes() == first


def test_partial_path_lint_skips_r8(write_tree):
    # A subset of the tree cannot be diffed against a whole-tree
    # manifest; without an explicit manifest, explicit paths skip R8.
    root = write_tree(TREE)
    report = lint_paths([root], use_cache=False)
    assert [f for f in report.findings if f.rule == "R8"] == []
