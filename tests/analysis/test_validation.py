"""GUST_VALIDATE runtime gate: plan/schedule invariants at trust boundaries."""

import numpy as np
import pytest

from repro import GustPipeline, uniform_random

# Exact store/cache/validation counter assertions: opt out of the
# ambient GUST_FAULTS plan the fault-injection CI leg installs.
pytestmark = pytest.mark.usefixtures("no_faults")
from repro.analysis.runtime import validation_enabled
from repro.core.plan import ExecutionPlan
from repro.core.schedule import Schedule


@pytest.fixture
def validate_spy(monkeypatch):
    """Count ExecutionPlan.validate / Schedule.validate invocations."""
    calls = {"plan": 0, "schedule": 0}
    plan_validate = ExecutionPlan.validate
    schedule_validate = Schedule.validate

    def counting_plan(self):
        calls["plan"] += 1
        return plan_validate(self)

    def counting_schedule(self):
        calls["schedule"] += 1
        return schedule_validate(self)

    monkeypatch.setattr(ExecutionPlan, "validate", counting_plan)
    monkeypatch.setattr(Schedule, "validate", counting_schedule)
    return calls


class TestEnvParsing:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy(self, monkeypatch, value):
        monkeypatch.setenv("GUST_VALIDATE", value)
        assert validation_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "maybe"])
    def test_falsy(self, monkeypatch, value):
        monkeypatch.setenv("GUST_VALIDATE", value)
        assert not validation_enabled()

    def test_unset(self, monkeypatch):
        monkeypatch.delenv("GUST_VALIDATE", raising=False)
        assert not validation_enabled()


class TestGatedValidation:
    def test_cold_insert_validates_plan(self, monkeypatch, validate_spy):
        monkeypatch.setenv("GUST_VALIDATE", "1")
        pipeline = GustPipeline(16, cache=True)
        pipeline.preprocess(uniform_random(48, 48, 0.1, seed=7))
        assert validate_spy["plan"] >= 1

    def test_disabled_skips_validation(self, monkeypatch, validate_spy):
        monkeypatch.delenv("GUST_VALIDATE", raising=False)
        pipeline = GustPipeline(16, cache=True)
        schedule, balanced, _ = pipeline.preprocess(
            uniform_random(48, 48, 0.1, seed=7)
        )
        pipeline.plan_for(schedule, balanced)
        assert validate_spy == {"plan": 0, "schedule": 0}

    def test_plan_for_validates_fresh_compile(
        self, monkeypatch, validate_spy
    ):
        monkeypatch.setenv("GUST_VALIDATE", "1")
        pipeline = GustPipeline(16)  # no cache: plan_for compiles fresh
        schedule, balanced, _ = pipeline.preprocess(
            uniform_random(48, 48, 0.1, seed=7)
        )
        before = validate_spy["plan"]
        plan = pipeline.plan_for(schedule, balanced)
        assert validate_spy["plan"] == before + 1
        # Memo hit: no re-validation.
        assert pipeline.plan_for(schedule, balanced) is plan
        assert validate_spy["plan"] == before + 1

    def test_store_load_validates_schedule_and_plan(
        self, monkeypatch, validate_spy, tmp_path
    ):
        matrix = uniform_random(48, 48, 0.1, seed=7)
        monkeypatch.delenv("GUST_VALIDATE", raising=False)
        GustPipeline(16, store=tmp_path).preprocess(matrix)  # write artifact

        monkeypatch.setenv("GUST_VALIDATE", "1")
        warm = GustPipeline(16, store=tmp_path)
        plan_calls = validate_spy["plan"]
        schedule, balanced, report = warm.preprocess(matrix)
        assert report.notes["disk_hit"] == 1.0
        assert validate_spy["schedule"] >= 1
        assert validate_spy["plan"] > plan_calls
        # The validated warm-start result still replays correctly.
        x = np.arange(matrix.shape[1], dtype=np.float64)
        np.testing.assert_allclose(
            warm.execute(schedule, balanced, x), matrix.matvec(x)
        )

    def test_store_load_skips_validation_when_disabled(
        self, monkeypatch, validate_spy, tmp_path
    ):
        matrix = uniform_random(48, 48, 0.1, seed=7)
        monkeypatch.delenv("GUST_VALIDATE", raising=False)
        GustPipeline(16, store=tmp_path).preprocess(matrix)
        warm = GustPipeline(16, store=tmp_path)
        _, _, report = warm.preprocess(matrix)
        assert report.notes["disk_hit"] == 1.0
        assert validate_spy == {"plan": 0, "schedule": 0}
