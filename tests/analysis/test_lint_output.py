"""Runner satellites: missing paths, dedupe, W2, and output formats."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.runner import iter_python_files
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestMissingTargets:
    def test_missing_path_is_a_clean_finding(self, tmp_path):
        ghost = tmp_path / "nope" / "missing.py"
        report = lint_paths([ghost], use_cache=False)
        assert [f.rule for f in report.findings] == ["E2"]
        finding = report.findings[0]
        assert finding.path == str(ghost)
        assert "does not exist" in finding.message
        assert not finding.warning
        assert report.exit_code() == 1

    def test_cli_reports_missing_path_not_traceback(self, capsys):
        exit_code = main(["lint", "/definitely/not/here.py"])
        assert exit_code == 1
        output = capsys.readouterr().out
        assert "E2" in output
        assert "does not exist" in output

    def test_present_targets_still_linted_alongside(self, tmp_path):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n", encoding="utf-8")
        report = lint_paths(
            [good, tmp_path / "missing.py"], use_cache=False
        )
        assert report.files_checked == 1
        assert [f.rule for f in report.findings] == ["E2"]


class TestTargetDeduplication:
    def test_directory_plus_member_lints_once(self, tmp_path):
        inner = tmp_path / "pkg"
        inner.mkdir()
        member = inner / "mod.py"
        member.write_text("x = 1\n", encoding="utf-8")
        files = iter_python_files([inner, member])
        assert files == [member.resolve()]

    def test_same_directory_twice_lints_once(self, tmp_path):
        member = tmp_path / "mod.py"
        member.write_text("x = 1\n", encoding="utf-8")
        assert iter_python_files([tmp_path, tmp_path]) == [member.resolve()]

    def test_order_independent_of_target_order(self, tmp_path):
        for name in ("b", "a"):
            sub = tmp_path / name
            sub.mkdir()
            (sub / f"{name}.py").write_text("x = 1\n", encoding="utf-8")
        forward = iter_python_files([tmp_path / "a", tmp_path / "b"])
        backward = iter_python_files([tmp_path / "b", tmp_path / "a"])
        assert forward == backward == sorted(forward, key=str)


class TestUnknownSuppression:
    def test_unknown_rule_id_is_w2_not_w1(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "x = 1  # lint: disable=R99\n", encoding="utf-8"
        )
        report = lint_paths([path], use_cache=False)
        assert [f.rule for f in report.findings] == ["W2"]
        finding = report.findings[0]
        assert finding.warning
        assert "unknown rule 'R99'" in finding.message
        assert "R1" in finding.message  # names the known registry

    def test_known_but_unused_is_still_w1(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "x = 1  # lint: disable=R1\n", encoding="utf-8"
        )
        report = lint_paths([path], use_cache=False)
        assert [f.rule for f in report.findings] == ["W1"]

    def test_mixed_line_reports_each_correctly(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "x = 1  # lint: disable=R1,R99\n", encoding="utf-8"
        )
        rules = sorted(
            f.rule for f in lint_paths([path], use_cache=False).findings
        )
        assert rules == ["W1", "W2"]


class TestOutputFormats:
    def _bad_tree(self, write_tree):
        return write_tree(
            {
                "repro/core/plan.py": (
                    "import numpy as np\n"
                    "\n"
                    "def order(rows):\n"
                    "    return np.argsort(rows)\n"
                )
            }
        )

    def test_json_format_golden_shape(self, write_tree, capsys):
        root = self._bad_tree(write_tree)
        exit_code = main(
            ["lint", "--format=json", "--no-cache", str(root)]
        )
        assert exit_code == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "cache_hits",
            "errors",
            "files_checked",
            "files_parsed",
            "findings",
            "warnings",
        }
        assert payload["errors"] == 1
        assert payload["warnings"] == 0
        assert payload["files_checked"] == 3  # plan.py + two __init__.py
        assert payload["files_parsed"] == 3
        [finding] = payload["findings"]
        assert finding["rule"] == "R9"
        assert finding["line"] == 4
        assert finding["path"].endswith("plan.py")
        assert finding["warning"] is False

    def test_github_format_emits_annotations(self, write_tree, capsys):
        root = self._bad_tree(write_tree)
        exit_code = main(
            ["lint", "--format=github", "--no-cache", str(root)]
        )
        assert exit_code == 1
        lines = capsys.readouterr().out.splitlines()
        annotation = lines[0]
        assert annotation.startswith("::error file=")
        assert ",line=4,title=R9::" in annotation
        assert lines[-1].startswith("repro lint:")

    def test_github_warnings_annotate_as_warnings(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # lint: disable=R1\n", encoding="utf-8")
        main(["lint", "--format=github", "--no-cache", str(path)])
        out = capsys.readouterr().out
        assert "::warning file=" in out
        assert "title=W1::" in out

    def test_text_format_unchanged_for_fixtures(self, capsys):
        exit_code = main(
            ["lint", "--no-cache", str(FIXTURES / "bad_reduceat.py")]
        )
        assert exit_code == 1
        out = capsys.readouterr().out
        assert f"{FIXTURES / 'bad_reduceat.py'}:7: R1 [error]" in out
