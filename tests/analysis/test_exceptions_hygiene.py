"""Rule R5 (serving-path exception hygiene): scope, verdicts, escape hatch.

R5 is path-scoped — it applies under a ``serve`` segment plus
``core/store.py`` — so these tests build small trees under ``tmp_path``
instead of using the flat fixtures directory.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_file

SWALLOW = """\
def handle(batch):
    try:
        work(batch)
    except Exception:
        pass
"""

BARE = """\
def handle(batch):
    try:
        work(batch)
    except:
        count += 1
"""

RERAISE = """\
def handle(batch):
    try:
        work(batch)
    except Exception:
        cleanup()
        raise
"""

ROUTES = """\
def handle(batch):
    try:
        work(batch)
    except Exception as error:
        for request in batch:
            request.future.set_exception(error)
"""

TYPED = """\
def handle(batch):
    try:
        work(batch)
    except OSError:
        return None
"""

SUPPRESSED = """\
def supervise(batch):
    try:
        work(batch)
    except Exception:  # lint: disable=R5 — deliberate absorb: supervisor
        respawn()
"""

BROAD_IN_TUPLE = """\
def handle(batch):
    try:
        work(batch)
    except (ValueError, Exception):
        return None
"""


def _lint(tmp_path: Path, relative: str, code: str):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code, encoding="utf-8")
    return lint_file(path)


class TestVerdicts:
    @pytest.mark.parametrize(
        "code,line",
        [(SWALLOW, 4), (BARE, 4), (BROAD_IN_TUPLE, 4)],
        ids=["except-Exception", "bare-except", "Exception-in-tuple"],
    )
    def test_swallowing_broad_handler_flagged(self, tmp_path, code, line):
        findings = _lint(tmp_path, "serve/worker.py", code)
        assert [(f.rule, f.line, f.warning) for f in findings] == [
            ("R5", line, False)
        ]
        assert "neither re-raises nor routes" in findings[0].message

    @pytest.mark.parametrize(
        "code",
        [RERAISE, ROUTES, TYPED],
        ids=["re-raises", "routes-via-set_exception", "typed-handler"],
    )
    def test_compliant_handlers_pass(self, tmp_path, code):
        assert _lint(tmp_path, "serve/worker.py", code) == []

    def test_escape_hatch_suppresses_without_w1(self, tmp_path):
        assert _lint(tmp_path, "serve/worker.py", SUPPRESSED) == []


class TestScope:
    def test_core_store_is_in_scope(self, tmp_path):
        findings = _lint(tmp_path, "core/store.py", SWALLOW)
        assert [f.rule for f in findings] == ["R5"]

    @pytest.mark.parametrize(
        "relative",
        ["core/machine.py", "graph/coloring.py", "store.py"],
        ids=["core-non-store", "graph", "store-outside-core"],
    )
    def test_other_paths_are_out_of_scope(self, tmp_path, relative):
        assert _lint(tmp_path, relative, SWALLOW) == []


def test_repo_serving_path_is_r5_clean():
    """The shipped serving layer must satisfy its own hygiene rule:
    every broad handler either complies or carries a justified disable."""
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    targets = sorted((src / "serve").glob("*.py")) + [
        src / "core" / "store.py"
    ]
    assert targets, "serving-path sources not found"
    for path in targets:
        findings = [f for f in lint_file(path) if not f.warning]
        assert findings == [], f"{path} has R5 errors: {findings}"
