"""The energy constants must match the paper's Section 4 verbatim."""

import pytest

from repro.energy.params import (
    DYNAMIC_POWER_W,
    GUST_FREQUENCY_HZ,
    PAPER_PARAMS,
    PREPROCESS_CPU_POWER_W,
    SERPENS_FREQUENCY_HZ,
    U280_PEAK_BANDWIDTH_GBPS,
)


class TestPaperConstants:
    def test_memory_energies(self):
        assert PAPER_PARAMS.offchip_read_pj == 64.0
        assert PAPER_PARAMS.onchip_read_pj == 11.84
        assert PAPER_PARAMS.offchip_write_pj == 64.0
        assert PAPER_PARAMS.onchip_write_pj == 16.0

    def test_arithmetic_energy(self):
        assert PAPER_PARAMS.flop_pj == 10.0

    def test_movement_energies(self):
        assert PAPER_PARAMS.offchip_move_pj_per_mm == 160.0
        assert PAPER_PARAMS.onchip_move_pj_per_mm == 0.95

    def test_distances(self):
        assert PAPER_PARAMS.offchip_distance_mm == 5.0
        assert PAPER_PARAMS.onchip_distance_1d_mm == 1.0
        assert PAPER_PARAMS.onchip_distance_gust256_mm == 129.0

    def test_distance_scales_with_length(self):
        assert PAPER_PARAMS.gust_onchip_distance_mm(256) == 129.0
        assert PAPER_PARAMS.gust_onchip_distance_mm(128) == pytest.approx(64.5)

    def test_dynamic_power_table(self):
        assert DYNAMIC_POWER_W[("1D", 256)] == 35.3
        assert DYNAMIC_POWER_W[("GUST", 256)] == 56.9
        assert DYNAMIC_POWER_W[("GUST", 87)] == 16.8
        assert DYNAMIC_POWER_W[("Serpens", 0)] == 46.2

    def test_platform_constants(self):
        assert GUST_FREQUENCY_HZ == 96e6
        assert SERPENS_FREQUENCY_HZ == 223e6
        assert PREPROCESS_CPU_POWER_W == 45.0
        assert U280_PEAK_BANDWIDTH_GBPS == 460.0
