"""Tests for the FPGA resource scaling laws (Tables 2 and 5)."""

import pytest

from repro.energy.resources import (
    arithmetic_resources,
    crossbar_resources,
    gust_dynamic_power_w,
    gust_resources,
    io_resources,
    max_bandwidth_gbps,
    static_power_w,
    systolic1d_resources,
)
from repro.errors import HardwareConfigError


class TestAnchorsReproduced:
    """The paper's synthesis points must come back exactly."""

    def test_crossbar_luts(self):
        assert crossbar_resources(8).lut == 772
        assert crossbar_resources(87).lut == 17_300
        assert crossbar_resources(256).lut == 756_000

    def test_crossbar_power(self):
        assert crossbar_resources(8).power_w == 1.0
        assert crossbar_resources(87).power_w == 3.6
        assert crossbar_resources(256).power_w == 16.4

    def test_arithmetic_at_256(self):
        arith = arithmetic_resources(256)
        assert arith.lut == 132_000
        assert arith.register == 8_192
        assert arith.dsp == 512
        assert arith.carry8 == 4_800

    def test_io_linear(self):
        assert io_resources(256).io_pins == 27_000
        assert io_resources(256).input_buffers == 18_000
        assert io_resources(8).io_pins == pytest.approx(844, abs=50)

    def test_total_power_anchored_to_table2(self):
        assert gust_dynamic_power_w(8) == 3.4
        assert gust_dynamic_power_w(87) == 16.8
        assert gust_dynamic_power_w(256) == 56.9

    def test_static_power(self):
        assert static_power_w(8) == 2.5
        assert static_power_w(256) == 3.8


class TestScalingLaws:
    def test_crossbar_superlinear(self):
        # Doubling length should more than double crossbar LUTs in the
        # upper regime — the Section 5.5 scalability bottleneck.
        assert crossbar_resources(256).lut > 4 * crossbar_resources(128).lut

    def test_arithmetic_linear(self):
        assert arithmetic_resources(128).lut == pytest.approx(
            arithmetic_resources(256).lut / 2, rel=0.01
        )

    def test_power_monotone(self):
        values = [gust_dynamic_power_w(length) for length in (8, 32, 87, 128, 256)]
        assert values == sorted(values)

    def test_sum_of_partitions(self):
        total = gust_resources(64)
        parts = (
            arithmetic_resources(64)
            + crossbar_resources(64)
            + io_resources(64)
        )
        assert total.lut == parts.lut
        assert total.register == parts.register


class TestBandwidth:
    def test_gust_256(self):
        # Paper: 224 GB/s (decimal GB); 18,433 bits * 96 MHz / 8.
        assert max_bandwidth_gbps("GUST", 256, 96e6) == pytest.approx(
            221.2, abs=0.5
        )

    def test_1d_anchor(self):
        assert max_bandwidth_gbps("1D", 256, 96e6) == pytest.approx(150.0)

    def test_unknown_design(self):
        with pytest.raises(HardwareConfigError, match="unknown"):
            max_bandwidth_gbps("TPU", 256, 96e6)


class TestValidation:
    def test_bad_length(self):
        with pytest.raises(HardwareConfigError):
            gust_resources(0)
        with pytest.raises(HardwareConfigError):
            systolic1d_resources(-5)
