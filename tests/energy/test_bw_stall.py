"""Tests for the bandwidth-stall model."""

import pytest

from repro.energy.bandwidth import required_bandwidth_gbps
from repro.energy.bw_stall import bandwidth_knee_sweep, bandwidth_limited_cycles
from repro.errors import HardwareConfigError


class TestKnee:
    def test_no_stalls_at_requirement(self):
        required = required_bandwidth_gbps(256, 96e6)
        report = bandwidth_limited_cycles(1000, 256, 96e6, required)
        assert report.stall_cycles == 0
        assert not report.bandwidth_bound

    def test_no_stalls_above_requirement(self):
        # The paper's provisioning: U280's 460 GB/s against a 221 GB/s need.
        report = bandwidth_limited_cycles(1000, 256, 96e6, 460.0)
        assert report.effective_cycles == 1000
        assert not report.bandwidth_bound

    def test_half_bandwidth_doubles_time(self):
        required = required_bandwidth_gbps(256, 96e6)
        report = bandwidth_limited_cycles(1000, 256, 96e6, required / 2)
        assert report.slowdown == pytest.approx(2.0, rel=0.01)
        assert report.bandwidth_bound

    def test_inverse_scaling_below_knee(self):
        required = required_bandwidth_gbps(128, 96e6)
        sweep = bandwidth_knee_sweep(
            5000, 128, 96e6,
            (required / 4, required / 2, required, 2 * required),
        )
        slowdowns = [report.slowdown for report in sweep]
        assert slowdowns[0] == pytest.approx(4.0, rel=0.01)
        assert slowdowns[1] == pytest.approx(2.0, rel=0.01)
        assert slowdowns[2] == 1.0
        assert slowdowns[3] == 1.0  # bandwidth beyond the knee buys nothing

    def test_zero_compute(self):
        report = bandwidth_limited_cycles(0, 256, 96e6, 10.0)
        assert report.effective_cycles == 0
        assert report.slowdown == 1.0


class TestValidation:
    def test_bad_arguments(self):
        with pytest.raises(HardwareConfigError):
            bandwidth_limited_cycles(-1, 256, 96e6, 100.0)
        with pytest.raises(HardwareConfigError):
            bandwidth_limited_cycles(10, 256, 96e6, 0.0)
        with pytest.raises(HardwareConfigError):
            bandwidth_limited_cycles(10, 256, 0.0, 100.0)
