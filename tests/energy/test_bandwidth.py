"""Tests for bandwidth requirement and utilization."""

import pytest

from repro import CooMatrix, GustPipeline, uniform_random
from repro.energy.bandwidth import (
    average_bandwidth_1d_gbps,
    average_bandwidth_gbps,
    required_bandwidth_gbps,
)
from repro.errors import HardwareConfigError


class TestRequired:
    def test_paper_values(self):
        # Section 4: 224 GB/s needed for length 256 at 96 MHz (we compute
        # 221 with decimal GB; the paper rounds).
        assert required_bandwidth_gbps(256, 96e6) == pytest.approx(221.2, abs=0.5)
        assert required_bandwidth_gbps(87, 96e6) == pytest.approx(74.1, abs=0.5)

    def test_rejects_bad_frequency(self):
        with pytest.raises(HardwareConfigError):
            required_bandwidth_gbps(8, 0.0)


class TestAverage:
    def test_average_below_max(self):
        matrix = uniform_random(256, 256, 0.02, seed=1)
        schedule, _, _ = GustPipeline(64).preprocess(matrix)
        average = average_bandwidth_gbps(schedule, 96e6)
        assert 0 < average < required_bandwidth_gbps(64, 96e6)

    def test_denser_schedule_higher_average(self):
        sparse = uniform_random(256, 256, 0.005, seed=2)
        dense = uniform_random(256, 256, 0.08, seed=2)
        pipeline = GustPipeline(64)
        bw_sparse = average_bandwidth_gbps(pipeline.preprocess(sparse)[0], 96e6)
        bw_dense = average_bandwidth_gbps(pipeline.preprocess(dense)[0], 96e6)
        assert bw_dense > bw_sparse

    def test_empty_schedule(self):
        schedule, _, _ = GustPipeline(8).preprocess(CooMatrix.empty((4, 4)))
        assert average_bandwidth_gbps(schedule, 96e6) == 0.0


class Test1D:
    def test_1d_average_far_below_gust(self):
        matrix = uniform_random(512, 512, 0.005, seed=3)
        schedule, _, _ = GustPipeline(64).preprocess(matrix)
        gust_bw = average_bandwidth_gbps(schedule, 96e6)
        one_d_bw = average_bandwidth_1d_gbps(matrix, 64, 96e6)
        assert gust_bw > 10 * one_d_bw

    def test_empty(self):
        assert average_bandwidth_1d_gbps(CooMatrix.empty((4, 4)), 8, 96e6) == 0.0
