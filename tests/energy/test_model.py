"""Tests for the per-design energy model."""

import numpy as np
import pytest

from repro import CooMatrix, uniform_random
from repro.energy.model import (
    EnergyModel,
    gust_spec,
    serpens_spec,
    systolic1d_spec,
)
from repro.errors import HardwareConfigError


@pytest.fixture
def model():
    return EnergyModel()


@pytest.fixture
def matrix():
    return uniform_random(128, 128, 0.05, seed=1)


class TestComponents:
    def test_all_non_negative(self, model, matrix):
        spec = gust_spec(64, 20.0, 96e6)
        report = model.spmv_energy(spec, matrix, cycles=1000)
        assert report.dynamic_j >= 0
        assert report.memory_j >= 0
        assert report.arithmetic_j >= 0
        assert report.movement_j >= 0

    def test_total_is_sum(self, model, matrix):
        spec = gust_spec(64, 20.0, 96e6)
        report = model.spmv_energy(spec, matrix, cycles=1000)
        assert report.total_j == pytest.approx(
            report.dynamic_j
            + report.memory_j
            + report.arithmetic_j
            + report.movement_j
        )

    def test_dynamic_scales_with_cycles(self, model, matrix):
        spec = gust_spec(64, 20.0, 96e6)
        fast = model.spmv_energy(spec, matrix, cycles=1000)
        slow = model.spmv_energy(spec, matrix, cycles=2000)
        assert slow.dynamic_j == pytest.approx(2 * fast.dynamic_j)
        # Traffic terms don't depend on cycles.
        assert slow.memory_j == fast.memory_j
        assert slow.movement_j == fast.movement_j

    def test_arithmetic_hand_computed(self, model):
        matrix = CooMatrix.from_arrays(
            np.array([0, 1]), np.array([0, 1]), np.ones(2), (2, 2)
        )
        spec = systolic1d_spec(35.3, 96e6)
        report = model.spmv_energy(spec, matrix, cycles=10)
        # 2 nonzeros * 2 flops * 10 pJ = 40 pJ.
        assert report.arithmetic_j == pytest.approx(40e-12)

    def test_negative_cycles_rejected(self, model, matrix):
        with pytest.raises(HardwareConfigError):
            model.spmv_energy(gust_spec(8, 1.0, 1e6), matrix, cycles=-1)


class TestDesignSpecs:
    def test_gust_streams_more_words_than_1d(self):
        gust = gust_spec(256, 56.9, 96e6)
        one_d = systolic1d_spec(35.3, 96e6)
        assert gust.words_per_nnz > one_d.words_per_nnz

    def test_gust_crossbar_distance(self):
        assert gust_spec(256, 56.9, 96e6).onchip_distance_mm == 129.0
        assert gust_spec(87, 16.8, 96e6).onchip_distance_mm == pytest.approx(
            129.0 * 87 / 256
        )

    def test_serpens_local_hops(self):
        assert serpens_spec(46.2, 223e6).onchip_distance_mm == 1.0


class TestHeadlineShape:
    def test_gust_beats_1d_on_sparse_input(self, model):
        """The Fig. 8 energy story: 1D's long runtime dominates."""
        matrix = uniform_random(2048, 2048, 0.001, seed=2)
        from repro.accelerators import GustAccelerator, Systolic1D

        gust_cycles = GustAccelerator(256).run(matrix).cycles
        one_d_cycles = Systolic1D(256).run(matrix).cycles
        gust_energy = model.spmv_energy(
            gust_spec(256, 56.9, 96e6), matrix, gust_cycles
        )
        one_d_energy = model.spmv_energy(
            systolic1d_spec(35.3, 96e6), matrix, one_d_cycles
        )
        assert one_d_energy.total_j > 10 * gust_energy.total_j


class TestPreprocessing:
    def test_cpu_energy(self):
        assert EnergyModel.preprocessing_energy_j(2.0) == 90.0

    def test_rejects_negative(self):
        with pytest.raises(HardwareConfigError):
            EnergyModel.preprocessing_energy_j(-1.0)
