"""Tests for the shared measurement dataclasses."""

import pytest

from repro.types import CycleReport, EnergyReport, PreprocessReport, RunResult


class TestCycleReport:
    def test_utilization(self):
        report = CycleReport(cycles=100, useful_ops=50, total_units=10)
        assert report.utilization == pytest.approx(0.05)

    def test_degenerate_cases(self):
        assert CycleReport(cycles=0, useful_ops=0, total_units=4).utilization == 0.0
        assert CycleReport(cycles=10, useful_ops=0, total_units=0).utilization == 0.0

    def test_full_utilization(self):
        report = CycleReport(cycles=10, useful_ops=40, total_units=4)
        assert report.utilization == 1.0

    def test_frozen(self):
        report = CycleReport(cycles=1, useful_ops=1, total_units=1)
        with pytest.raises(AttributeError):
            report.cycles = 2


class TestEnergyReport:
    def test_total(self):
        report = EnergyReport(
            dynamic_j=1.0, memory_j=2.0, arithmetic_j=3.0, movement_j=4.0
        )
        assert report.total_j == 10.0


class TestRunResult:
    def test_derived_metrics(self):
        report = CycleReport(cycles=96, useful_ops=192, total_units=4)
        result = RunResult(
            design="x", matrix="m", cycle_report=report, frequency_hz=96e6
        )
        assert result.seconds == pytest.approx(1e-6)
        assert result.gflops == pytest.approx(192 / 1e-6 / 1e9)

    def test_zero_time(self):
        report = CycleReport(cycles=0, useful_ops=0, total_units=4)
        result = RunResult(
            design="x", matrix="m", cycle_report=report, frequency_hz=96e6
        )
        assert result.gflops == 0.0


class TestPreprocessReport:
    def test_notes_default(self):
        report = PreprocessReport(seconds=1.0)
        assert report.notes == {}
        report.notes["stalls"] = 3.0
        assert report.notes["stalls"] == 3.0
