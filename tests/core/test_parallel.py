"""Tests for the parallel GUST arrangement (Section 5.5)."""

import pytest

from repro import ParallelGust, uniform_random
from repro.core.schedule import PIPELINE_FILL_CYCLES
from repro.errors import HardwareConfigError


class TestAssignment:
    def test_round_robin_distribution(self, square_matrix):
        parallel = ParallelGust(32, units=3)
        report = parallel.run(square_matrix)
        assert len(report.unit_cycles) == 3
        colors = report.schedule.window_colors
        expected = [0, 0, 0]
        for index, c in enumerate(colors):
            expected[index % 3] += c
        assert list(report.unit_cycles) == expected

    def test_lpt_no_worse_than_round_robin(self):
        matrix = uniform_random(256, 256, 0.05, seed=8)
        round_robin = ParallelGust(32, units=4, assignment="round_robin")
        lpt = ParallelGust(32, units=4, assignment="lpt")
        assert lpt.run(matrix).cycles <= round_robin.run(matrix).cycles

    def test_cycles_is_max_plus_fill(self, square_matrix):
        parallel = ParallelGust(32, units=2)
        report = parallel.run(square_matrix)
        assert report.cycles == max(report.unit_cycles) + PIPELINE_FILL_CYCLES

    def test_single_unit_equals_pipeline(self, square_matrix):
        parallel = ParallelGust(32, units=1)
        report = parallel.run(square_matrix)
        schedule, _, _ = parallel.pipeline.preprocess(square_matrix)
        assert report.cycles == schedule.execution_cycles


class TestMetrics:
    def test_imbalance_at_least_one(self, square_matrix):
        parallel = ParallelGust(32, units=4)
        report = parallel.run(square_matrix)
        assert report.imbalance >= 1.0

    def test_cycle_report_units(self, square_matrix):
        parallel = ParallelGust(32, units=4)
        report = parallel.cycle_report(parallel.run(square_matrix))
        assert report.total_units == 2 * 32 * 4
        assert report.useful_ops == 2 * square_matrix.nnz

    def test_more_units_never_slower(self, square_matrix):
        cycles = [
            ParallelGust(32, units=k).run(square_matrix).cycles
            for k in (1, 2, 4)
        ]
        assert cycles[0] >= cycles[-1] * 0.5  # sanity: same order of magnitude


class TestValidation:
    def test_bad_units(self):
        with pytest.raises(HardwareConfigError, match="units"):
            ParallelGust(32, units=0)

    def test_bad_assignment(self):
        with pytest.raises(HardwareConfigError, match="assignment"):
            ParallelGust(32, units=2, assignment="psychic")
