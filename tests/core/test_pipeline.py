"""Tests for the end-to-end GUST pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CooMatrix, GustPipeline, uniform_random
from repro.errors import HardwareConfigError
from tests.strategies import coo_matrices

CONFIGS = [
    ("matching", False),
    ("matching", True),
    ("first_fit", True),
    ("euler", False),
    ("naive", False),
]


class TestSpmv:
    @pytest.mark.parametrize("algorithm,load_balance", CONFIGS)
    def test_matches_oracle(self, square_matrix, rng, algorithm, load_balance):
        pipeline = GustPipeline(
            32, algorithm=algorithm, load_balance=load_balance, validate=True
        )
        x = rng.normal(size=square_matrix.shape[1])
        result = pipeline.spmv(square_matrix, x)
        np.testing.assert_allclose(result.y, square_matrix.matvec(x))

    def test_fast_replay_equals_machine(self, square_matrix, rng):
        pipeline = GustPipeline(32, validate=True)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        x = rng.normal(size=square_matrix.shape[1])
        fast = pipeline.execute(schedule, balanced, x)
        slow, _ = pipeline.execute_cycle_accurate(schedule, balanced, x)
        np.testing.assert_allclose(fast, slow)

    def test_schedule_reused_across_vectors(self, square_matrix, rng):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        for _ in range(3):
            x = rng.normal(size=square_matrix.shape[1])
            np.testing.assert_allclose(
                pipeline.execute(schedule, balanced, x),
                square_matrix.matvec(x),
            )

    def test_wrong_vector_length(self, square_matrix):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        with pytest.raises(HardwareConfigError, match="incompatible"):
            pipeline.execute(schedule, balanced, np.zeros(7))

    @given(coo_matrices(max_dim=40))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_matrices(self, matrix):
        pipeline = GustPipeline(8, validate=True)
        x = np.linspace(-1.0, 1.0, matrix.shape[1])
        result = pipeline.spmv(matrix, x)
        np.testing.assert_allclose(
            result.y, matrix.matvec(x), atol=1e-12
        )


class TestReports:
    def test_preprocess_stats_equals_full_preprocess(self, square_matrix):
        pipeline = GustPipeline(32)
        schedule, _, _ = pipeline.preprocess(square_matrix)
        stats_report, preprocess = pipeline.preprocess_stats(square_matrix)
        assert stats_report.cycles == schedule.execution_cycles
        assert preprocess.total_colors == schedule.total_colors
        assert preprocess.windows == schedule.window_count

    def test_cycle_report_fields(self, square_matrix):
        pipeline = GustPipeline(32)
        result = pipeline.spmv(
            square_matrix, np.zeros(square_matrix.shape[1])
        )
        report = result.cycle_report
        assert report.useful_ops == 2 * square_matrix.nnz
        assert report.total_units == 64
        assert 0 < report.utilization <= 1

    def test_naive_reports_stalls(self, square_matrix):
        pipeline = GustPipeline(32, algorithm="naive")
        report, preprocess = pipeline.preprocess_stats(square_matrix)
        assert report.stalls > 0
        assert preprocess.notes["stalls"] == report.stalls

    def test_load_balance_disabled_for_naive(self):
        pipeline = GustPipeline(32, algorithm="naive", load_balance=True)
        assert pipeline.load_balance is False

    def test_empty_matrix_report(self):
        pipeline = GustPipeline(8)
        report, _ = pipeline.preprocess_stats(CooMatrix.empty((4, 4)))
        assert report.cycles == 0
        assert report.utilization == 0.0


class TestUtilizationOrdering:
    def test_load_balancing_helps_skewed_matrices(self):
        from repro import power_law

        matrix = power_law(512, 512, 0.02, seed=4)
        with_lb = GustPipeline(64, load_balance=True)
        without_lb = GustPipeline(64, load_balance=False)
        cycles_lb, _ = with_lb.preprocess_stats(matrix)
        cycles_plain, _ = without_lb.preprocess_stats(matrix)
        assert cycles_lb.cycles < cycles_plain.cycles

    def test_ec_beats_naive(self, square_matrix):
        colored, _ = GustPipeline(32).preprocess_stats(square_matrix)
        naive, _ = GustPipeline(32, algorithm="naive").preprocess_stats(
            square_matrix
        )
        assert colored.cycles < naive.cycles
