"""Tests for the naive stall-and-serialize scheduling policy."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import GustScheduler, uniform_random
from repro.core.naive import naive_coloring, naive_stalls
from repro.graph.bipartite import WindowGraph
from repro.graph.properties import validate_coloring
from tests.strategies import window_graphs


def _graph(rows, segs, length):
    rows = np.asarray(rows, dtype=np.int64)
    segs = np.asarray(segs, dtype=np.int64)
    return WindowGraph(
        length=length,
        local_rows=rows,
        colsegs=segs,
        cols=segs.copy(),
        values=np.ones(rows.size),
    )


class TestSemantics:
    def test_collision_free_heads_share_a_cycle(self):
        # Two lanes, different rows: both issue at cycle 0.
        graph = _graph([0, 1], [0, 1], length=2)
        assert naive_coloring(graph).tolist() == [0, 0]

    def test_colliding_heads_serialize(self):
        # Two lanes, same destination row: the whole position serializes.
        graph = _graph([0, 0], [0, 1], length=2)
        colors = sorted(naive_coloring(graph).tolist())
        assert colors == [0, 1]

    def test_mixed_position_costs_free_plus_collided(self):
        # Three lanes: lanes 0,1 collide on row 0; lane 2 is free.
        # Cycle 0: free head issues; cycles 1,2: serialized replays.
        graph = _graph([0, 0, 1], [0, 1, 2], length=3)
        colors = naive_coloring(graph)
        assert colors[2] == 0  # the free head
        assert sorted(colors[:2].tolist()) == [1, 2]

    def test_lockstep_blocks_lane_progress(self):
        # Lane 0 holds two elements; lane 1 holds one colliding with the
        # first.  Lane 0's second element cannot issue before the first
        # buffer position fully drains.
        graph = _graph([0, 1, 0], [0, 0, 1], length=2)
        colors = naive_coloring(graph)
        # Position 0 of lanes {0,1} collide (rows 0 and... rows differ) —
        # construct explicitly instead: lane0=[r0], lane1=[r0, r1].
        graph = _graph([0, 0, 1], [0, 1, 1], length=2)
        colors = naive_coloring(graph)
        first_position = sorted([colors[0], colors[1]])
        assert first_position == [0, 1]  # serialized
        assert colors[2] > max(first_position)  # lane 1 advances only after

    def test_empty(self):
        graph = _graph([], [], length=4)
        assert naive_coloring(graph).size == 0
        assert naive_stalls(graph, np.zeros(0, dtype=np.int64)) == 0


class TestProperties:
    @given(graph=window_graphs())
    @settings(max_examples=50, deadline=None)
    def test_always_proper(self, graph):
        colors = naive_coloring(graph)
        validate_coloring(graph, colors)

    @given(graph=window_graphs())
    @settings(max_examples=50, deadline=None)
    def test_never_beats_the_degree_bound(self, graph):
        colors = naive_coloring(graph)
        if graph.edge_count:
            assert int(colors.max()) + 1 >= graph.max_degree()

    @given(graph=window_graphs())
    @settings(max_examples=30, deadline=None)
    def test_stalls_non_negative(self, graph):
        colors = naive_coloring(graph)
        assert naive_stalls(graph, colors) >= 0


class TestVersusEdgeColoring:
    def test_naive_much_worse_on_dense_uniform(self):
        matrix = uniform_random(256, 256, 0.1, seed=5)
        naive = GustScheduler(64, algorithm="naive").schedule(matrix)
        colored = GustScheduler(64, algorithm="matching").schedule(matrix)
        assert naive.execution_cycles > 5 * colored.execution_cycles

    def test_naive_equals_ec_when_no_collisions(self):
        # A diagonal matrix never collides: both policies are optimal.
        from repro import CooMatrix

        n = 16
        matrix = CooMatrix.from_arrays(
            np.arange(n), np.arange(n), np.ones(n), (n, n)
        )
        naive = GustScheduler(16, algorithm="naive").schedule(matrix)
        colored = GustScheduler(16, algorithm="matching").schedule(matrix)
        assert naive.execution_cycles == colored.execution_cycles == 3


class TestFlatKernel:
    def test_multi_window_matches_per_window_wrappers(self):
        """The flat kernel with per-window cycle counters equals running
        the single-window wrapper on each window independently."""
        from repro import uniform_random
        from repro.core.load_balance import identity_balance
        from repro.core.naive import naive_coloring_flat, naive_stalls_flat
        from repro.graph._reference import reference_window_graphs

        matrix = uniform_random(70, 50, 0.12, seed=31)
        length = 16
        balanced = identity_balance(matrix, length)
        window_ids = matrix.rows // length
        local_rows = matrix.rows % length
        colsegs = balanced.colseg_of_all(window_ids, matrix.cols, length)
        graphs = reference_window_graphs(balanced, length)
        starts = np.searchsorted(window_ids, np.arange(len(graphs) + 1))

        flat = naive_coloring_flat(
            local_rows, colsegs, window_ids, length, len(graphs)
        )
        stalls = naive_stalls_flat(
            flat, colsegs, window_ids, length, len(graphs)
        )
        per_window_stalls = 0
        for graph, lo, hi in zip(graphs, starts[:-1], starts[1:]):
            colors = naive_coloring(graph)
            np.testing.assert_array_equal(flat[lo:hi], colors)
            per_window_stalls += naive_stalls(graph, colors)
        assert stalls == per_window_stalls

    def test_empty_flat_input(self):
        from repro.core.naive import naive_coloring_flat, naive_stalls_flat

        empty = np.zeros(0, dtype=np.int64)
        assert naive_coloring_flat(empty, empty, empty, 4, 3).size == 0
        assert naive_stalls_flat(empty, empty, empty, 4, 3) == 0
