"""Tests for the cycle-accurate GUST machine."""

import numpy as np
import pytest

from repro import CooMatrix, GustMachine, GustPipeline, uniform_random
from repro.errors import CollisionError, HardwareConfigError


@pytest.fixture
def pipeline():
    return GustPipeline(16, load_balance=True, validate=True)


class TestExecution:
    def test_matches_oracle_and_analytic_cycles(self, small_matrix, rng):
        pipeline = GustPipeline(16, validate=True)
        schedule, balanced, _ = pipeline.preprocess(small_matrix)
        x = rng.normal(size=small_matrix.shape[1])
        y, result = pipeline.execute_cycle_accurate(schedule, balanced, x)
        np.testing.assert_allclose(y, small_matrix.matvec(x))
        assert result.cycles == schedule.execution_cycles
        assert result.multiplier_ops == small_matrix.nnz
        assert result.adder_ops == small_matrix.nnz

    def test_fifo_depth_equals_max_window_colors(self, small_matrix, rng):
        pipeline = GustPipeline(16, validate=True)
        schedule, balanced, _ = pipeline.preprocess(small_matrix)
        x = rng.normal(size=small_matrix.shape[1])
        _, result = pipeline.execute_cycle_accurate(schedule, balanced, x)
        assert result.max_fifo_depth == max(schedule.window_colors)

    def test_empty_matrix(self):
        machine = GustMachine(8)
        pipeline = GustPipeline(8)
        schedule, balanced, _ = pipeline.preprocess(CooMatrix.empty((4, 4)))
        result = machine.run(schedule, np.ones(4))
        assert result.cycles == 0
        np.testing.assert_array_equal(result.y_permuted, np.zeros(4))

    def test_empty_rows_emit_zero(self, rng):
        # Rows 1 and 3 have no nonzeros; their outputs must be exactly 0.
        matrix = CooMatrix.from_arrays(
            np.array([0, 2]), np.array([1, 3]), np.array([2.0, 3.0]), (4, 4)
        )
        pipeline = GustPipeline(4, validate=True)
        x = rng.normal(size=4)
        result = pipeline.spmv(matrix, x)
        y2, _ = pipeline.execute_cycle_accurate(
            *pipeline.preprocess(matrix)[:2], x
        )
        np.testing.assert_allclose(y2, matrix.matvec(x))
        assert y2[1] == 0.0 and y2[3] == 0.0

    def test_non_divisible_dimensions(self, rng):
        matrix = uniform_random(37, 53, 0.1, seed=2)
        pipeline = GustPipeline(8, validate=True)
        schedule, balanced, _ = pipeline.preprocess(matrix)
        x = rng.normal(size=53)
        y, result = pipeline.execute_cycle_accurate(schedule, balanced, x)
        np.testing.assert_allclose(y, matrix.matvec(x))

    def test_memory_traffic_accounted(self, small_matrix, rng):
        pipeline = GustPipeline(16, validate=True)
        schedule, balanced, _ = pipeline.preprocess(small_matrix)
        x = rng.normal(size=small_matrix.shape[1])
        _, result = pipeline.execute_cycle_accurate(schedule, balanced, x)
        stream = result.stream
        # Vector in + 3 words per nonzero.
        assert stream.offchip_read_words == (
            small_matrix.shape[1] + 3 * small_matrix.nnz
        )
        # One output word per matrix row (all windows dump full lanes).
        assert stream.offchip_write_words == small_matrix.shape[0]


class TestGuards:
    def test_collision_detection(self, small_matrix, rng):
        from repro.core.schedule import EMPTY, Schedule

        pipeline = GustPipeline(16, validate=True)
        schedule, balanced, _ = pipeline.preprocess(small_matrix)
        row_sch = schedule.row_sch.copy()
        for step in range(schedule.total_colors):
            lanes = np.nonzero(row_sch[step] != EMPTY)[0]
            if lanes.size >= 2:
                row_sch[step, lanes[1]] = row_sch[step, lanes[0]]
                break
        corrupted = Schedule(
            length=schedule.length,
            shape=schedule.shape,
            m_sch=schedule.m_sch,
            row_sch=row_sch,
            col_sch=schedule.col_sch,
            window_colors=schedule.window_colors,
        )
        with pytest.raises(CollisionError, match="routed"):
            GustMachine(16).run(corrupted, rng.normal(size=small_matrix.shape[1]))

    def test_length_mismatch(self, small_matrix):
        pipeline = GustPipeline(16)
        schedule, _, _ = pipeline.preprocess(small_matrix)
        with pytest.raises(HardwareConfigError, match="length"):
            GustMachine(8).run(schedule, np.zeros(small_matrix.shape[1]))

    def test_vector_length_mismatch(self, small_matrix):
        pipeline = GustPipeline(16)
        schedule, _, _ = pipeline.preprocess(small_matrix)
        with pytest.raises(HardwareConfigError, match="incompatible"):
            GustMachine(16).run(schedule, np.zeros(3))

    def test_invalid_length(self):
        with pytest.raises(HardwareConfigError, match="positive"):
            GustMachine(0)


class TestAcrossAlgorithms:
    @pytest.mark.parametrize("algorithm", ["matching", "first_fit", "euler", "naive"])
    def test_machine_runs_any_proper_schedule(self, algorithm, rng):
        matrix = uniform_random(48, 48, 0.08, seed=9)
        pipeline = GustPipeline(
            16, algorithm=algorithm, load_balance=False, validate=True
        )
        schedule, balanced, _ = pipeline.preprocess(matrix)
        x = rng.normal(size=48)
        y, result = pipeline.execute_cycle_accurate(schedule, balanced, x)
        np.testing.assert_allclose(y, matrix.matvec(x))
        assert result.cycles == schedule.execution_cycles
