"""Tests for the GPU-analogue cost model (paper Section 7)."""

import pytest

from repro import uniform_random
from repro.core.gpu_sketch import GpuGustSketch
from repro.errors import HardwareConfigError


class TestCostModel:
    def test_spmv_is_memory_bound(self):
        """The paper's caveat: GPU SpMV sits under the bandwidth roof."""
        matrix = uniform_random(4096, 4096, 0.002, seed=1)
        report = GpuGustSketch().estimate(matrix)
        assert report.memory_bound
        assert report.seconds == report.memory_seconds

    def test_tiny_bandwidth_flips_to_memory_side_harder(self):
        matrix = uniform_random(1024, 1024, 0.01, seed=2)
        fast_memory = GpuGustSketch(memory_bandwidth_gbps=2000.0).estimate(matrix)
        slow_memory = GpuGustSketch(memory_bandwidth_gbps=50.0).estimate(matrix)
        assert slow_memory.memory_seconds > fast_memory.memory_seconds
        assert slow_memory.seconds >= fast_memory.seconds

    def test_more_blocks_reduce_compute_time(self):
        matrix = uniform_random(2048, 2048, 0.01, seed=3)
        few = GpuGustSketch(blocks=4).estimate(matrix)
        many = GpuGustSketch(blocks=256).estimate(matrix)
        assert many.compute_seconds < few.compute_seconds
        # The bandwidth roof is block-count independent.
        assert many.memory_seconds == few.memory_seconds

    def test_empty_matrix(self):
        from repro import CooMatrix

        report = GpuGustSketch().estimate(CooMatrix.empty((8, 8)))
        assert report.compute_seconds == 0.0
        assert report.seconds >= 0.0


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(HardwareConfigError):
            GpuGustSketch(blocks=0)
        with pytest.raises(HardwareConfigError):
            GpuGustSketch(memory_bandwidth_gbps=-1.0)
