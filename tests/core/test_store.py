"""Tests for the content-addressed disk schedule store and the tiered cache.

Covers the persistence contract the deployment story rests on: lookups go
memory -> disk -> compute, artifacts survive "process restarts" (fresh
in-memory caches), corrupt artifacts fall through to recomputation, and
concurrent writers racing on one key leave exactly one valid artifact.
"""

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import (
    DiskScheduleStore,
    GustPipeline,
    GustSpmm,
    ScheduleCache,
    uniform_random,
)
from repro.core.store import default_store_dir, store_key_from_digest
from repro.errors import HardwareConfigError

# Exact store/cache counter assertions: opt out of the ambient
# GUST_FAULTS plan the fault-injection CI leg installs.
pytestmark = pytest.mark.usefixtures("no_faults")


@pytest.fixture
def store(tmp_path):
    return DiskScheduleStore(directory=tmp_path / "store")


class TestStoreBasics:
    def test_roundtrip_by_key(self, store, square_matrix):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        key = store.key_for(square_matrix, 32, "matching", True)
        assert store.load(key) is None
        assert store.store(key, schedule, balanced, stalls=3)
        assert store.contains(key)
        entry = store.load(key)
        assert entry is not None
        assert entry.stalls == 3
        assert entry.schedule.window_colors == schedule.window_colors
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.artifact_count() == 1
        assert store.total_bytes() > 0

    def test_key_is_content_addressed(self, store, square_matrix, rng):
        """Same pattern -> same key, regardless of values; any change to the
        pattern or configuration changes the key."""
        base = store.key_for(square_matrix, 32, "matching", True)
        revalued = square_matrix.with_data(
            rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        )
        assert store.key_for(revalued, 32, "matching", True) == base
        assert store.key_for(square_matrix, 16, "matching", True) != base
        assert store.key_for(square_matrix, 32, "first_fit", True) != base
        assert store.key_for(square_matrix, 32, "matching", False) != base
        other = uniform_random(96, 96, 0.06, seed=99)
        assert store.key_for(other, 32, "matching", True) != base

    def test_key_depends_on_code_version(self):
        digest = b"\x00" * 16
        from repro.core import store as store_module

        before = store_key_from_digest(digest, 10)
        assert store_key_from_digest(digest, 11) != before
        old = store_module.SCHEDULER_CODE_VERSION
        try:
            store_module.SCHEDULER_CODE_VERSION = old + 1
            assert store_key_from_digest(digest, 10) != before
        finally:
            store_module.SCHEDULER_CODE_VERSION = old

    def test_transient_read_error_is_miss_not_quarantine(
        self, store, square_matrix, monkeypatch
    ):
        """A flaky I/O error (shared filesystem) must not delete a valid
        artifact; only checksum/format failures are quarantined."""
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        key = store.key_for(square_matrix, 32, "matching", True)
        store.store(key, schedule, balanced)

        from repro.core import store as store_module

        def flaky(path, validate=True):
            raise OSError(5, "Input/output error")

        monkeypatch.setattr(store_module, "load_schedule_entry", flaky)
        assert store.load(key) is None
        assert store.stats.corrupt_dropped == 0
        monkeypatch.undo()
        assert store.path_for(key).exists()
        assert store.load(key) is not None

    def test_corrupt_artifact_quarantined(self, store, square_matrix):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        key = store.key_for(square_matrix, 32, "matching", True)
        store.store(key, schedule, balanced)
        path = store.path_for(key)
        data = path.read_bytes()
        truncated = data[: len(data) // 2]
        path.write_bytes(truncated)

        assert store.load(key) is None
        assert not path.exists(), "corrupt artifact must leave the store"
        assert store.stats.corrupt_dropped == 1
        # The damaged bytes survive in .quarantine/ for forensics.
        moved = store.quarantine_dir / path.name
        assert moved.is_file()
        assert moved.read_bytes() == truncated
        assert store.quarantined_count() == 1
        # Quarantined files are invisible to the store proper.
        assert store.artifact_count() == 0
        assert store.total_bytes() == 0

    def test_quarantine_is_bounded(self, store, square_matrix):
        """A recurring writer bug must not grow the quarantine without
        bound: past the retention cap, the oldest evidence is pruned."""
        import time

        from repro.core.store import _QUARANTINE_KEEP

        pipeline = GustPipeline(16)
        matrices = [
            uniform_random(48, 48, 0.08, seed=s)
            for s in range(_QUARANTINE_KEEP + 3)
        ]
        for i, matrix in enumerate(matrices):
            schedule, balanced, _ = pipeline.preprocess(matrix)
            key = store.key_for(matrix, 16, "matching", True)
            store.store(key, schedule, balanced)
            store.path_for(key).write_bytes(b"GUSTSCH\x00broken")
            assert store.load(key) is None
            # Distinct mtimes so "oldest" is well defined on coarse clocks.
            quarantined = store.quarantine_dir / store.path_for(key).name
            os.utime(quarantined, (1_000_000 + i,) * 2)
        assert store.quarantined_count() == _QUARANTINE_KEEP
        # The survivors are the newest files.
        kept = sorted(p.name for p in store.quarantine_dir.iterdir())
        newest = sorted(
            store.path_for(store.key_for(m, 16, "matching", True)).name
            for m in matrices[-_QUARANTINE_KEEP:]
        )
        assert kept == sorted(newest)

    def test_signed_bad_index_artifact_quarantined_not_crash(
        self, store, square_matrix
    ):
        """A checksum-valid artifact holding out-of-range indices (a
        writer bug) must quarantine as a miss, never raise IndexError
        through the lookup."""
        from repro.core.serialize import _load_container, _save_container

        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        key = store.key_for(square_matrix, 32, "matching", True)
        store.store(key, schedule, balanced)
        path = store.path_for(key)
        scalars, views, _version = _load_container(path)
        arrays = {name: arr.copy() for name, arr in views.items()}
        bad_source = arrays["slot_source"].astype(np.int64)
        bad_source[0] = 10**9
        arrays["slot_source"] = bad_source
        _save_container(path, scalars, arrays)

        assert store.load(key) is None
        assert store.stats.corrupt_dropped == 1
        assert store.quarantined_count() == 1

    def test_quarantined_slot_heals_on_rewrite(self, store, square_matrix):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        key = store.key_for(square_matrix, 32, "matching", True)
        store.store(key, schedule, balanced)
        store.path_for(key).write_bytes(b"GUSTSCH\x00garbage")
        assert store.load(key) is None
        assert store.store(key, schedule, balanced)
        assert store.load(key) is not None
        assert store.quarantined_count() == 1, "forensic copy is retained"

    def test_clear_removes_artifacts_and_temporaries(self, store, square_matrix):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        store.store(store.key_for(square_matrix, 32, "matching", True),
                    schedule, balanced)
        stray = store.directory / "abandoned.tmp"
        stray.write_bytes(b"partial")
        assert store.clear() == 2
        assert store.artifact_count() == 0
        assert not stray.exists()

    def test_clear_empties_quarantine(self, store, square_matrix):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        key = store.key_for(square_matrix, 32, "matching", True)
        store.store(key, schedule, balanced)
        store.path_for(key).write_bytes(b"not a schedule at all")
        assert store.load(key) is None
        assert store.quarantined_count() == 1
        assert store.clear() == 1, "quarantined file counts toward clear()"
        assert store.quarantined_count() == 0

    def test_byte_budget_evicts_oldest(self, tmp_path):
        pipeline = GustPipeline(16)
        matrices = [uniform_random(64, 64, 0.1, seed=s) for s in range(3)]
        prepared = [pipeline.preprocess(m) for m in matrices]

        # Budget sized to hold roughly two artifacts.
        probe = DiskScheduleStore(directory=tmp_path / "probe")
        key0 = probe.key_for(matrices[0], 16, "matching", True)
        probe.store(key0, prepared[0][0], prepared[0][1])
        one_size = probe.total_bytes()

        store = DiskScheduleStore(
            directory=tmp_path / "tight", max_bytes=int(one_size * 2.5)
        )
        keys = [store.key_for(m, 16, "matching", True) for m in matrices]
        for (schedule, balanced, _), key in zip(prepared, keys):
            store.store(key, schedule, balanced)
            # Distinct mtimes so "oldest" is well defined on coarse clocks.
            os.utime(store.path_for(key), (1_000_000 + keys.index(key),) * 2)
        store._evict_to_budget()
        assert store.stats.evictions >= 1
        assert not store.contains(keys[0]), "oldest artifact should go first"
        assert store.contains(keys[2])

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(HardwareConfigError, match="budget"):
            DiskScheduleStore(directory=tmp_path, max_bytes=0)

    def test_default_dir_honors_gust_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GUST_CACHE_DIR", str(tmp_path / "custom"))
        assert default_store_dir() == tmp_path / "custom"
        monkeypatch.delenv("GUST_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_store_dir() == tmp_path / "xdg" / "gust"


class TestTieredLookup:
    def test_full_miss_counts_both_tiers(self, store, square_matrix):
        first = ScheduleCache(store=store)
        assert first.fetch(square_matrix, 32, "matching", True) is None
        assert first.stats.misses == 1
        assert first.stats.disk_misses == 1
        assert store.stats.misses == 1

    def test_tier_progression(self, store, square_matrix, rng):
        pipeline = GustPipeline(32, store=store)
        _, _, cold = pipeline.preprocess(square_matrix)
        assert cold.notes["cache_hit"] == 0.0
        assert cold.notes["disk_hit"] == 0.0
        assert store.stats.writes == 1

        # "Restarted worker": same store, empty memory cache.
        warm = GustPipeline(32, store=store)
        schedule, balanced, report = warm.preprocess(square_matrix)
        assert report.notes["cache_hit"] == 1.0
        assert report.notes["disk_hit"] == 1.0
        x = rng.normal(size=square_matrix.shape[1])
        np.testing.assert_allclose(
            warm.execute(schedule, balanced, x), square_matrix.matvec(x)
        )

        # Third lookup: memory tier, disk untouched.
        hits_before = store.stats.hits
        _, _, again = warm.preprocess(square_matrix)
        assert again.notes["cache_hit"] == 1.0
        assert again.notes["disk_hit"] == 0.0
        assert store.stats.hits == hits_before

    def test_disk_hit_with_new_values_refreshes(self, store, square_matrix, rng):
        """A restarted worker with a re-assembled (same-pattern) matrix gets
        the artifact's coloring plus a value refresh — never a recolor."""
        GustPipeline(32, store=store).preprocess(square_matrix)
        updated = square_matrix.with_data(
            rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        )
        warm = GustPipeline(32, store=store)
        schedule, balanced, report = warm.preprocess(updated)
        assert report.notes["disk_hit"] == 1.0
        assert report.notes["cache_refresh"] == 1.0
        x = rng.normal(size=updated.shape[1])
        np.testing.assert_allclose(
            warm.execute(schedule, balanced, x), updated.matvec(x)
        )
        # The refreshed schedule matches a cold schedule of the new matrix.
        cold, _, _ = GustPipeline(32).preprocess(updated)
        np.testing.assert_array_equal(schedule.m_sch, cold.m_sch)

    def test_corrupt_artifact_falls_through_to_recompute(
        self, store, square_matrix, rng
    ):
        """Satellite: a damaged artifact must never surface — the lookup
        reports a miss, the pipeline recomputes, and the slot heals."""
        GustPipeline(32, store=store).preprocess(square_matrix)
        key = store.key_for(square_matrix, 32, "matching", True)
        path = store.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one byte mid-archive
        path.write_bytes(bytes(blob))

        recovering = GustPipeline(32, store=store)
        schedule, balanced, report = recovering.preprocess(square_matrix)
        assert report.notes["cache_hit"] == 0.0  # honest cold pass
        assert recovering.cache.stats.disk_misses == 1
        assert store.stats.corrupt_dropped == 1
        x = rng.normal(size=square_matrix.shape[1])
        np.testing.assert_allclose(
            recovering.execute(schedule, balanced, x), square_matrix.matvec(x)
        )
        # Write-through healed the slot: next restart warm-starts again.
        healed = GustPipeline(32, store=store)
        _, _, after = healed.preprocess(square_matrix)
        assert after.notes["disk_hit"] == 1.0

    def test_insert_skips_existing_artifact(self, store, square_matrix):
        GustPipeline(32, store=store).preprocess(square_matrix)
        assert store.stats.writes == 1
        GustPipeline(32, store=store).preprocess(square_matrix)
        assert store.stats.writes == 1, "content-addressed: no rewrite"

    def test_naive_stalls_survive_disk_roundtrip(self, store, square_matrix):
        cold = GustPipeline(32, algorithm="naive", store=store)
        cold.preprocess(square_matrix)
        stalls = cold.scheduler.last_stalls
        assert stalls > 0
        warm = GustPipeline(32, algorithm="naive", store=store)
        _, _, report = warm.preprocess(square_matrix)
        assert report.notes["disk_hit"] == 1.0
        assert warm.scheduler.last_stalls == stalls

    def test_pipeline_store_parameter_forms(self, tmp_path):
        directory = tmp_path / "via-path"
        by_path = GustPipeline(16, store=directory)
        assert isinstance(by_path.store, DiskScheduleStore)
        assert by_path.store.directory == directory
        assert by_path.cache is not None, "store implies a memory tier"

        shared = DiskScheduleStore(directory=tmp_path / "shared")
        cache = ScheduleCache()
        attached = GustPipeline(16, cache=cache, store=shared)
        assert attached.cache is cache
        assert cache.store is shared

        assert GustPipeline(16).store is None
        assert GustPipeline(16, store=False).store is None

    def test_cache_false_with_store_rejected(self, tmp_path):
        """cache=False + store would silently never persist; refuse it."""
        with pytest.raises(HardwareConfigError, match="incompatible"):
            GustPipeline(16, cache=False, store=tmp_path / "s")

    def test_loaded_artifact_saves_cleanly(self, store, square_matrix, tmp_path):
        """The CLI flow on a disk hit: re-serialize a schedule whose
        matrix came from an artifact (narrow index dtypes) and read it
        back — the key join must not overflow in narrower arithmetic."""
        from repro import load_schedule, save_schedule

        GustPipeline(32, store=store).preprocess(square_matrix)
        warm = GustPipeline(32, store=store)
        schedule, balanced, report = warm.preprocess(square_matrix)
        assert report.notes["disk_hit"] == 1.0
        out = tmp_path / "resaved.sched"
        save_schedule(out, schedule, balanced)
        reloaded_schedule, _ = load_schedule(out)
        np.testing.assert_array_equal(reloaded_schedule.m_sch, schedule.m_sch)

    def test_spmm_warm_starts_from_disk(self, store, square_matrix, rng):
        dense = rng.normal(size=(square_matrix.shape[1], 3))
        first = GustSpmm(32, store=store)
        expected = first.spmm(square_matrix, dense).y
        restarted = GustSpmm(32, store=store)
        result = restarted.spmm(square_matrix, dense)
        assert restarted.pipeline.cache.stats.disk_hits == 1
        np.testing.assert_allclose(result.y, expected)


def _race_one_worker(directory, seed, queue):
    """One 'process' of the racing fleet: schedule, execute, verify."""
    matrix = uniform_random(96, 96, 0.06, seed=11)
    pipeline = GustPipeline(32, store=DiskScheduleStore(directory=directory))
    schedule, balanced, _ = pipeline.preprocess(matrix)
    x = np.random.default_rng(seed).normal(size=96)
    ok = np.allclose(pipeline.execute(schedule, balanced, x), matrix.matvec(x))
    queue.put(bool(ok))


class TestConcurrency:
    def test_thread_race_leaves_one_valid_artifact(self, tmp_path, square_matrix, rng):
        """Two 'workers' (separate memory caches, one store directory) racing
        on the same key must both succeed and leave one valid artifact."""
        directory = tmp_path / "racing"
        workers = [
            GustPipeline(32, store=DiskScheduleStore(directory=directory))
            for _ in range(4)
        ]
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(lambda p: p.preprocess(square_matrix), workers)
            )
        x = rng.normal(size=square_matrix.shape[1])
        for pipeline, (schedule, balanced, _) in zip(workers, results):
            np.testing.assert_allclose(
                pipeline.execute(schedule, balanced, x),
                square_matrix.matvec(x),
            )
        artifacts = [p for p in directory.iterdir() if p.suffix == ".sched"]
        leftovers = [p for p in directory.iterdir() if p.suffix == ".tmp"]
        assert len(artifacts) == 1, "exactly one valid artifact"
        assert leftovers == [], "atomic rename leaves no temporaries"
        entry = DiskScheduleStore(directory=directory).load(
            workers[0].store.key_for(square_matrix, 32, "matching", True)
        )
        assert entry is not None

    def test_process_race_leaves_one_valid_artifact(self, tmp_path):
        directory = tmp_path / "proc-racing"
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_race_one_worker, args=(str(directory), s, queue))
            for s in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in procs)
        assert [queue.get(timeout=5) for _ in procs] == [True, True]
        artifacts = [p for p in directory.iterdir() if p.suffix == ".sched"]
        leftovers = [p for p in directory.iterdir() if p.suffix == ".tmp"]
        assert len(artifacts) == 1
        assert leftovers == []
        # The surviving artifact is complete and checksum-clean.
        matrix = uniform_random(96, 96, 0.06, seed=11)
        store = DiskScheduleStore(directory=directory)
        entry = store.load(store.key_for(matrix, 32, "matching", True))
        assert entry is not None
        assert entry.schedule.nnz == matrix.nnz


class TestSizeManifest:
    """Budget accounting through the lightweight size manifest."""

    def _schedule(self, seed=0):
        pipeline = GustPipeline(16)
        matrix = uniform_random(64, 64, 0.1, seed=seed)
        schedule, balanced, _ = pipeline.preprocess(matrix)
        return matrix, schedule, balanced

    def test_manifest_written_and_sizes_match(self, store):
        matrix, schedule, balanced = self._schedule()
        key = store.key_for(matrix, 16, "matching", True)
        store.store(key, schedule, balanced)
        sizes = store._read_manifest()
        assert sizes is not None
        name = store.path_for(key).name
        assert sizes == {name: store.path_for(key).stat().st_size}

    def test_healthy_manifest_skips_the_stat_walk(self, store):
        """Under budget, only the first write (no manifest yet) walks."""
        for seed in range(3):
            matrix, schedule, balanced = self._schedule(seed)
            key = store.key_for(matrix, 16, "matching", True)
            store.store(key, schedule, balanced)
        assert store.stats.writes == 3
        assert store.stats.stat_walks == 1
        sizes = store._read_manifest()
        assert sizes is not None and len(sizes) == 3
        assert sum(sizes.values()) == store.total_bytes()

    def test_stale_manifest_falls_back_to_walk(self, store):
        matrix, schedule, balanced = self._schedule()
        key = store.key_for(matrix, 16, "matching", True)
        store.store(key, schedule, balanced)
        walks = store.stats.stat_walks
        store.manifest_path.write_text("{definitely not json", "utf-8")
        other, schedule2, balanced2 = self._schedule(1)
        key2 = store.key_for(other, 16, "matching", True)
        store.store(key2, schedule2, balanced2)
        assert store.stats.stat_walks == walks + 1
        sizes = store._read_manifest()
        assert sizes is not None and len(sizes) == 2

    def test_version_skew_reads_as_stale(self, store):
        matrix, schedule, balanced = self._schedule()
        key = store.key_for(matrix, 16, "matching", True)
        store.store(key, schedule, balanced)
        store.manifest_path.write_text(
            '{"version": 999, "sizes": {}}', "utf-8"
        )
        assert store._read_manifest() is None

    def test_eviction_rewrites_manifest_to_survivors(self, tmp_path):
        pipeline = GustPipeline(16)
        matrices = [uniform_random(64, 64, 0.1, seed=s) for s in range(3)]
        prepared = [pipeline.preprocess(m) for m in matrices]
        probe = DiskScheduleStore(directory=tmp_path / "probe")
        key0 = probe.key_for(matrices[0], 16, "matching", True)
        probe.store(key0, prepared[0][0], prepared[0][1])
        one_size = probe.total_bytes()

        store = DiskScheduleStore(
            directory=tmp_path / "tight", max_bytes=int(one_size * 2.5)
        )
        keys = [store.key_for(m, 16, "matching", True) for m in matrices]
        for (schedule, balanced, _), key in zip(prepared, keys):
            store.store(key, schedule, balanced)
        assert store.stats.evictions >= 1
        sizes = store._read_manifest()
        survivors = {p.name for p in store._artifacts()}
        assert sizes is not None and set(sizes) == survivors

    def test_externally_deleted_artifact_heals_on_walk(self, store):
        """A manifest entry whose file vanished is dropped by the next
        resync walk instead of wedging accounting."""
        matrix, schedule, balanced = self._schedule()
        key = store.key_for(matrix, 16, "matching", True)
        store.store(key, schedule, balanced)
        store.path_for(key).unlink()  # another process evicted it
        # Force the stale-manifest path by deleting the manifest too.
        store.manifest_path.unlink()
        other, schedule2, balanced2 = self._schedule(1)
        key2 = store.key_for(other, 16, "matching", True)
        store.store(key2, schedule2, balanced2)
        sizes = store._read_manifest()
        assert sizes is not None
        assert set(sizes) == {store.path_for(key2).name}

    def test_clear_removes_manifest(self, store):
        matrix, schedule, balanced = self._schedule()
        key = store.key_for(matrix, 16, "matching", True)
        store.store(key, schedule, balanced)
        assert store.manifest_path.exists()
        store.clear()
        assert not store.manifest_path.exists()
        assert store.artifact_count() == 0

    def test_manifest_invisible_to_artifact_walk(self, store):
        matrix, schedule, balanced = self._schedule()
        key = store.key_for(matrix, 16, "matching", True)
        store.store(key, schedule, balanced)
        assert store.artifact_count() == 1
        assert store.manifest_path.name not in {
            p.name for p in store._artifacts()
        }


class TestStoreHonestReporting:
    """store() must report whether the artifact actually survived the
    write — and the budget sweep must prefer evicting *other* artifacts
    over the one just written."""

    def _prepared(self, count=2):
        pipeline = GustPipeline(16)
        matrices = [uniform_random(64, 64, 0.1, seed=s) for s in range(count)]
        return matrices, [pipeline.preprocess(m) for m in matrices]

    def test_store_returns_false_when_budget_cannot_hold_it(self, tmp_path):
        """A budget smaller than a single artifact means the write cannot
        stick; store() used to delete the fresh file in the sweep and
        still return True."""
        matrices, prepared = self._prepared(1)
        store = DiskScheduleStore(directory=tmp_path, max_bytes=1)
        key = store.key_for(matrices[0], 16, "matching", True)
        schedule, balanced, _ = prepared[0]
        assert store.store(key, schedule, balanced) is False
        assert not store.contains(key)
        assert store.stats.evictions == 1

    def test_sweep_evicts_older_artifacts_before_the_fresh_write(
        self, tmp_path
    ):
        """Even when an older artifact's mtime sorts *after* the fresh
        write (clock skew, coarse filesystem timestamps), the sweep must
        sacrifice the older artifact: the caller asked for the new one."""
        matrices, prepared = self._prepared(2)
        probe = DiskScheduleStore(directory=tmp_path / "probe")
        key0 = probe.key_for(matrices[0], 16, "matching", True)
        probe.store(key0, prepared[0][0], prepared[0][1])
        one_size = probe.total_bytes()

        store = DiskScheduleStore(
            directory=tmp_path / "tight", max_bytes=int(one_size * 1.5)
        )
        keys = [store.key_for(m, 16, "matching", True) for m in matrices]
        schedule0, balanced0, _ = prepared[0]
        assert store.store(keys[0], schedule0, balanced0) is True
        # Push the first artifact's mtime into the future so the
        # oldest-first sweep would pick the fresh write as its victim.
        os.utime(store.path_for(keys[0]), (4_000_000_000,) * 2)
        schedule1, balanced1, _ = prepared[1]
        assert store.store(keys[1], schedule1, balanced1) is True
        assert store.contains(keys[1]), "fresh write must survive the sweep"
        assert not store.contains(keys[0])
        assert store.stats.evictions == 1


class TestFaultInjection:
    """Injected IO faults degrade to counted misses, never exceptions."""

    def _artifacts(self, square_matrix):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        return schedule, balanced

    def test_injected_read_error_counts_and_misses(
        self, tmp_path, square_matrix
    ):
        from repro.faults import FaultPlan

        schedule, balanced = self._artifacts(square_matrix)
        store = DiskScheduleStore(
            directory=tmp_path / "store",
            faults=FaultPlan(counts={"store-read": 1}),
        )
        key = store.key_for(square_matrix, 32, "matching", True)
        assert store.store(key, schedule, balanced, stalls=0)
        # First load hits the injected OSError: a counted miss, not a
        # raise — the caller recomputes.
        assert store.load(key) is None
        assert store.stats.io_errors == 1
        assert store.stats.misses == 1
        assert store.stats.hits == 0
        # The artifact is intact; the fault budget is spent.
        entry = store.load(key)
        assert entry is not None
        assert entry.schedule.window_colors == schedule.window_colors
        assert store.stats.io_errors == 1

    def test_injected_write_error_counts_and_reports_false(
        self, tmp_path, square_matrix
    ):
        from repro.faults import FaultPlan

        schedule, balanced = self._artifacts(square_matrix)
        store = DiskScheduleStore(
            directory=tmp_path / "store",
            faults=FaultPlan(counts={"store-write": 1}),
        )
        key = store.key_for(square_matrix, 32, "matching", True)
        assert store.store(key, schedule, balanced, stalls=0) is False
        assert store.stats.io_errors == 1
        assert store.stats.write_errors == 1
        assert not store.contains(key)
        # Retry succeeds once the injected budget is exhausted.
        assert store.store(key, schedule, balanced, stalls=0)
        assert store.load(key) is not None

    def test_injected_corruption_quarantined_on_read(
        self, tmp_path, square_matrix
    ):
        from repro.faults import FaultPlan

        schedule, balanced = self._artifacts(square_matrix)
        store = DiskScheduleStore(
            directory=tmp_path / "store",
            faults=FaultPlan(counts={"store-corrupt": 1}),
        )
        key = store.key_for(square_matrix, 32, "matching", True)
        assert store.store(key, schedule, balanced, stalls=0)
        # The corrupted artifact must fall through to a miss (quarantine
        # path), not raise or return garbage.
        assert store.load(key) is None
        assert store.stats.corrupt_dropped == 1
