"""Tests for the SpMM extension."""

import numpy as np
import pytest

from repro import GustSpmm, uniform_random
from repro.errors import HardwareConfigError


class TestCorrectness:
    def test_matches_dense_product(self, square_matrix, rng):
        dense = rng.normal(size=(square_matrix.shape[1], 5))
        result = GustSpmm(32).spmm(square_matrix, dense)
        expected = np.column_stack(
            [square_matrix.matvec(dense[:, j]) for j in range(5)]
        )
        np.testing.assert_allclose(result.y, expected)

    def test_single_column_equals_spmv(self, square_matrix, rng):
        x = rng.normal(size=square_matrix.shape[1])
        result = GustSpmm(32).spmm(square_matrix, x[:, None])
        np.testing.assert_allclose(result.y[:, 0], square_matrix.matvec(x))

    def test_schedule_shared_across_columns(self, square_matrix, rng):
        engine = GustSpmm(32)
        schedule, balanced = engine.preprocess(square_matrix)
        first = engine.multiply(
            schedule, balanced, rng.normal(size=(square_matrix.shape[1], 3))
        )
        second = engine.multiply(
            schedule, balanced, rng.normal(size=(square_matrix.shape[1], 4))
        )
        assert first.schedule is second.schedule

    def test_wrong_operand_shape(self, square_matrix):
        engine = GustSpmm(32)
        schedule, balanced = engine.preprocess(square_matrix)
        with pytest.raises(HardwareConfigError, match="dense operand"):
            engine.multiply(schedule, balanced, np.zeros((3, 3)))


class TestTileBoundaries:
    """Column tiling must be exact at every boundary, on both replay paths."""

    @pytest.mark.parametrize("backend", ["reduceat", "legacy-scatter"])
    def test_k_not_multiple_of_tile(
        self, square_matrix, rng, monkeypatch, backend
    ):
        """Column count deliberately not a multiple of the tile width: the
        trailing partial tile must be reduced and written correctly."""
        from repro.core import spmm as spmm_module

        engine = GustSpmm(32, backend=backend)
        schedule, balanced = engine.preprocess(square_matrix)
        # Budget of three columns' worth of slots -> tile = 3.
        monkeypatch.setattr(
            spmm_module, "_SPMM_PRODUCT_BUDGET", 3 * schedule.nnz
        )
        k = 7  # 3 + 3 + 1: exercises a short final tile
        dense = rng.normal(size=(square_matrix.shape[1], k))
        result = engine.multiply(schedule, balanced, dense)
        expected = np.column_stack(
            [square_matrix.matvec(dense[:, j]) for j in range(k)]
        )
        np.testing.assert_allclose(result.y, expected)

    @pytest.mark.parametrize("backend", ["reduceat", "legacy-scatter"])
    def test_single_slot_budget_forces_tile_one(
        self, square_matrix, rng, monkeypatch, backend
    ):
        """A budget below one column's slot count clamps the tile to a
        single column; every column becomes its own reduction."""
        from repro.core import spmm as spmm_module

        engine = GustSpmm(32, backend=backend)
        schedule, balanced = engine.preprocess(square_matrix)
        monkeypatch.setattr(spmm_module, "_SPMM_PRODUCT_BUDGET", 1)
        dense = rng.normal(size=(square_matrix.shape[1], 4))
        result = engine.multiply(schedule, balanced, dense)
        expected = np.column_stack(
            [square_matrix.matvec(dense[:, j]) for j in range(4)]
        )
        np.testing.assert_allclose(result.y, expected)


class TestCycleModel:
    def test_cycles_scale_with_columns(self, square_matrix):
        engine = GustSpmm(32)
        schedule, _ = engine.preprocess(square_matrix)
        one = engine.cycle_report(schedule, 1).cycles
        eight = engine.cycle_report(schedule, 8).cycles
        assert eight == pytest.approx(8 * schedule.total_colors + 2)
        assert one < eight

    def test_replicas_divide_columns(self, square_matrix):
        schedule, _ = GustSpmm(32).preprocess(square_matrix)
        single = GustSpmm(32, replicas=1).cycle_report(schedule, 8)
        quad = GustSpmm(32, replicas=4).cycle_report(schedule, 8)
        assert quad.cycles < single.cycles
        assert quad.total_units == 4 * single.total_units
        assert quad.useful_ops == single.useful_ops

    def test_zero_columns(self, square_matrix):
        schedule, _ = GustSpmm(32).preprocess(square_matrix)
        assert GustSpmm(32).cycle_report(schedule, 0).cycles == 0

    def test_bad_replicas(self):
        with pytest.raises(HardwareConfigError, match="replicas"):
            GustSpmm(32, replicas=0)


class TestStackedReplay:
    """The batched-replay kernel behind the serving layer's batcher."""

    def _prepared(self, matrix, length=16):
        from repro import GustPipeline

        pipeline = GustPipeline(length)
        schedule, balanced, _ = pipeline.preprocess(matrix)
        return pipeline, schedule, balanced, pipeline.plan_for(
            schedule, balanced
        )

    @pytest.mark.parametrize("force_numpy", [False, True])
    def test_bit_identical_to_per_request_execute(
        self, square_matrix, rng, force_numpy
    ):
        from repro import StackedReplay

        _, _, _, plan = self._prepared(square_matrix, length=32)
        kernel = StackedReplay(plan, force_numpy=force_numpy)
        for k in (1, 2, 7, 16):
            stacked = rng.normal(size=(k, square_matrix.shape[1]))
            block = kernel.matvecs(stacked)
            assert block.shape == (square_matrix.shape[0], k)
            for j in range(k):
                assert (block[:, j] == plan.execute(stacked[j])).all()

    def test_backends_agree_bit_for_bit(self, square_matrix, rng):
        from repro import StackedReplay

        _, _, _, plan = self._prepared(square_matrix, length=32)
        scipy_kernel = StackedReplay(plan)
        numpy_kernel = StackedReplay(plan, force_numpy=True)
        assert numpy_kernel.backend == "bincount"
        stacked = rng.normal(size=(5, square_matrix.shape[1]))
        assert (
            scipy_kernel.matvecs(stacked) == numpy_kernel.matvecs(stacked)
        ).all()

    def test_non_contiguous_input(self, square_matrix, rng):
        from repro import StackedReplay

        _, _, _, plan = self._prepared(square_matrix, length=32)
        kernel = StackedReplay(plan)
        wide = rng.normal(size=(4, 2 * square_matrix.shape[1]))
        stacked = wide[:, ::2]  # strided view
        block = kernel.matvecs(stacked)
        for j in range(4):
            assert (block[:, j] == plan.execute(stacked[j].copy())).all()

    def test_rejects_bad_shapes(self, square_matrix, rng):
        from repro import StackedReplay

        _, _, _, plan = self._prepared(square_matrix, length=32)
        kernel = StackedReplay(plan)
        with pytest.raises(HardwareConfigError, match="stacked operand"):
            kernel.matvecs(rng.normal(size=square_matrix.shape[1]))
        with pytest.raises(HardwareConfigError, match="stacked operand"):
            kernel.matvecs(rng.normal(size=(3, square_matrix.shape[1] + 1)))

    def test_empty_matrix_and_empty_batch(self):
        from repro import GustPipeline, StackedReplay
        from repro.sparse.coo import CooMatrix

        matrix = CooMatrix.empty((5, 3))
        pipeline = GustPipeline(4)
        schedule, balanced, _ = pipeline.preprocess(matrix)
        plan = pipeline.plan_for(schedule, balanced)
        for force_numpy in (False, True):
            kernel = StackedReplay(plan, force_numpy=force_numpy)
            block = kernel.matvecs(np.zeros((2, 3)))
            assert block.shape == (5, 2)
            assert (block == 0).all()
            assert kernel.matvecs(np.zeros((0, 3))).shape == (5, 0)

    def test_load_balanced_permutation_folded_in(self, rng):
        """Heavy-tailed rows exercise the balancer's row permutation."""
        from repro import StackedReplay, power_law

        matrix = power_law(80, 80, 0.06, seed=3)
        _, _, _, plan = self._prepared(matrix, length=16)
        for force_numpy in (False, True):
            kernel = StackedReplay(plan, force_numpy=force_numpy)
            stacked = rng.normal(size=(3, 80))
            block = kernel.matvecs(stacked)
            for j in range(3):
                assert np.allclose(block[:, j], matrix.matvec(stacked[j]))
                assert (block[:, j] == plan.execute(stacked[j])).all()
