"""Tests for the SpMM extension."""

import numpy as np
import pytest

from repro import GustSpmm, uniform_random
from repro.errors import HardwareConfigError


class TestCorrectness:
    def test_matches_dense_product(self, square_matrix, rng):
        dense = rng.normal(size=(square_matrix.shape[1], 5))
        result = GustSpmm(32).spmm(square_matrix, dense)
        expected = np.column_stack(
            [square_matrix.matvec(dense[:, j]) for j in range(5)]
        )
        np.testing.assert_allclose(result.y, expected)

    def test_single_column_equals_spmv(self, square_matrix, rng):
        x = rng.normal(size=square_matrix.shape[1])
        result = GustSpmm(32).spmm(square_matrix, x[:, None])
        np.testing.assert_allclose(result.y[:, 0], square_matrix.matvec(x))

    def test_schedule_shared_across_columns(self, square_matrix, rng):
        engine = GustSpmm(32)
        schedule, balanced = engine.preprocess(square_matrix)
        first = engine.multiply(
            schedule, balanced, rng.normal(size=(square_matrix.shape[1], 3))
        )
        second = engine.multiply(
            schedule, balanced, rng.normal(size=(square_matrix.shape[1], 4))
        )
        assert first.schedule is second.schedule

    def test_wrong_operand_shape(self, square_matrix):
        engine = GustSpmm(32)
        schedule, balanced = engine.preprocess(square_matrix)
        with pytest.raises(HardwareConfigError, match="dense operand"):
            engine.multiply(schedule, balanced, np.zeros((3, 3)))


class TestTileBoundaries:
    """Column tiling must be exact at every boundary, on both replay paths."""

    @pytest.mark.parametrize("use_plans", [True, False])
    def test_k_not_multiple_of_tile(
        self, square_matrix, rng, monkeypatch, use_plans
    ):
        """Column count deliberately not a multiple of the tile width: the
        trailing partial tile must be reduced and written correctly."""
        from repro.core import spmm as spmm_module

        engine = GustSpmm(32, use_plans=use_plans)
        schedule, balanced = engine.preprocess(square_matrix)
        # Budget of three columns' worth of slots -> tile = 3.
        monkeypatch.setattr(
            spmm_module, "_SPMM_PRODUCT_BUDGET", 3 * schedule.nnz
        )
        k = 7  # 3 + 3 + 1: exercises a short final tile
        dense = rng.normal(size=(square_matrix.shape[1], k))
        result = engine.multiply(schedule, balanced, dense)
        expected = np.column_stack(
            [square_matrix.matvec(dense[:, j]) for j in range(k)]
        )
        np.testing.assert_allclose(result.y, expected)

    @pytest.mark.parametrize("use_plans", [True, False])
    def test_single_slot_budget_forces_tile_one(
        self, square_matrix, rng, monkeypatch, use_plans
    ):
        """A budget below one column's slot count clamps the tile to a
        single column; every column becomes its own reduction."""
        from repro.core import spmm as spmm_module

        engine = GustSpmm(32, use_plans=use_plans)
        schedule, balanced = engine.preprocess(square_matrix)
        monkeypatch.setattr(spmm_module, "_SPMM_PRODUCT_BUDGET", 1)
        dense = rng.normal(size=(square_matrix.shape[1], 4))
        result = engine.multiply(schedule, balanced, dense)
        expected = np.column_stack(
            [square_matrix.matvec(dense[:, j]) for j in range(4)]
        )
        np.testing.assert_allclose(result.y, expected)


class TestCycleModel:
    def test_cycles_scale_with_columns(self, square_matrix):
        engine = GustSpmm(32)
        schedule, _ = engine.preprocess(square_matrix)
        one = engine.cycle_report(schedule, 1).cycles
        eight = engine.cycle_report(schedule, 8).cycles
        assert eight == pytest.approx(8 * schedule.total_colors + 2)
        assert one < eight

    def test_replicas_divide_columns(self, square_matrix):
        schedule, _ = GustSpmm(32).preprocess(square_matrix)
        single = GustSpmm(32, replicas=1).cycle_report(schedule, 8)
        quad = GustSpmm(32, replicas=4).cycle_report(schedule, 8)
        assert quad.cycles < single.cycles
        assert quad.total_units == 4 * single.total_units
        assert quad.useful_ops == single.useful_ops

    def test_zero_columns(self, square_matrix):
        schedule, _ = GustSpmm(32).preprocess(square_matrix)
        assert GustSpmm(32).cycle_report(schedule, 0).cycles == 0

    def test_bad_replicas(self):
        with pytest.raises(HardwareConfigError, match="replicas"):
            GustSpmm(32, replicas=0)
