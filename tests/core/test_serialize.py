"""Tests for schedule persistence."""

import numpy as np
import pytest

from repro import GustPipeline, load_schedule, save_schedule
from repro.errors import ScheduleError


class TestRoundtrip:
    def test_save_load_execute(self, square_matrix, rng, tmp_path):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        path = tmp_path / "schedule.npz"
        save_schedule(path, schedule, balanced)

        loaded_schedule, loaded_balanced = load_schedule(path)
        assert loaded_schedule.window_colors == schedule.window_colors
        assert loaded_schedule.shape == schedule.shape
        x = rng.normal(size=square_matrix.shape[1])
        y = pipeline.execute(loaded_schedule, loaded_balanced, x)
        np.testing.assert_allclose(y, square_matrix.matvec(x))

    def test_roundtrip_without_load_balancing(self, small_matrix, rng, tmp_path):
        pipeline = GustPipeline(16, load_balance=False)
        schedule, balanced, _ = pipeline.preprocess(small_matrix)
        path = tmp_path / "plain.npz"
        save_schedule(path, schedule, balanced)
        loaded_schedule, loaded_balanced = load_schedule(path)
        x = rng.normal(size=small_matrix.shape[1])
        np.testing.assert_allclose(
            pipeline.execute(loaded_schedule, loaded_balanced, x),
            small_matrix.matvec(x),
        )


class TestTamperResistance:
    def test_corrupted_schedule_rejected(self, square_matrix, tmp_path):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        path = tmp_path / "schedule.npz"
        save_schedule(path, schedule, balanced)

        # Rewrite the archive with an aliased adder destination.
        with np.load(path) as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        row_sch = arrays["row_sch"]
        from repro.core.schedule import EMPTY

        for step in range(row_sch.shape[0]):
            lanes = np.nonzero(row_sch[step] != EMPTY)[0]
            if lanes.size >= 2:
                row_sch[step, lanes[1]] = row_sch[step, lanes[0]]
                break
        np.savez_compressed(path, **arrays)
        with pytest.raises(ScheduleError, match="collision"):
            load_schedule(path)

    def test_wrong_version_rejected(self, square_matrix, tmp_path):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        path = tmp_path / "schedule.npz"
        save_schedule(path, schedule, balanced)
        with np.load(path) as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        arrays["version"] = np.array([999], dtype=np.int64)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ScheduleError, match="version"):
            load_schedule(path)
