"""Tests for schedule persistence: round-trips, integrity, atomicity."""

import os

import numpy as np
import pytest

from repro import (
    GustPipeline,
    load_schedule,
    load_schedule_entry,
    save_schedule,
)
from repro.core.serialize import _load_container, _save_container
from repro.errors import ScheduleError


def _rewrite(path, mutate):
    """Load an artifact, apply ``mutate(scalars, arrays)``, re-save in place.

    Re-saving through the writer recomputes the integrity checksum, so
    this models a *logically* wrong artifact that is nonetheless signed;
    raw-byte corruption (which the checksum must catch) is done on the
    file bytes directly in the tests below.
    """
    scalars, views = _load_container(path)
    arrays = {name: arr.copy() for name, arr in views.items()}
    mutate(scalars, arrays)
    _save_container(path, scalars, arrays)


class TestRoundtrip:
    def test_save_load_execute(self, square_matrix, rng, tmp_path):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        path = tmp_path / "schedule.sched"
        save_schedule(path, schedule, balanced)

        loaded_schedule, loaded_balanced = load_schedule(path)
        assert loaded_schedule.window_colors == schedule.window_colors
        assert loaded_schedule.shape == schedule.shape
        np.testing.assert_array_equal(loaded_schedule.m_sch, schedule.m_sch)
        np.testing.assert_array_equal(loaded_schedule.row_sch, schedule.row_sch)
        np.testing.assert_array_equal(loaded_schedule.col_sch, schedule.col_sch)
        x = rng.normal(size=square_matrix.shape[1])
        y = pipeline.execute(loaded_schedule, loaded_balanced, x)
        np.testing.assert_allclose(y, square_matrix.matvec(x))

    def test_roundtrip_without_load_balancing(self, small_matrix, rng, tmp_path):
        pipeline = GustPipeline(16, load_balance=False)
        schedule, balanced, _ = pipeline.preprocess(small_matrix)
        path = tmp_path / "plain.sched"
        save_schedule(path, schedule, balanced)
        loaded_schedule, loaded_balanced = load_schedule(path)
        x = rng.normal(size=small_matrix.shape[1])
        np.testing.assert_allclose(
            pipeline.execute(loaded_schedule, loaded_balanced, x),
            small_matrix.matvec(x),
        )

    def test_empty_matrix_roundtrip(self, tmp_path):
        from repro import CooMatrix

        pipeline = GustPipeline(8)
        empty = CooMatrix.empty((16, 16))
        schedule, balanced, _ = pipeline.preprocess(empty)
        path = tmp_path / "empty.sched"
        save_schedule(path, schedule, balanced)
        loaded_schedule, _ = load_schedule(path)
        assert loaded_schedule.nnz == 0
        assert loaded_schedule.window_colors == schedule.window_colors

    def test_stalls_metadata_roundtrip(self, square_matrix, tmp_path):
        pipeline = GustPipeline(32, algorithm="naive")
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        stalls = pipeline.scheduler.last_stalls
        assert stalls > 0
        path = tmp_path / "naive.sched"
        save_schedule(path, schedule, balanced, stalls=stalls)
        entry = load_schedule_entry(path)
        assert entry.stalls == stalls

    def test_window_col_maps_roundtrip_exactly(self, square_matrix, tmp_path):
        """The flattened map encoding restores every per-window pair."""
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        path = tmp_path / "maps.sched"
        save_schedule(path, schedule, balanced)
        _, loaded = load_schedule(path)
        assert len(loaded.window_col_maps) == len(balanced.window_col_maps)
        for (cols, lanes), (got_cols, got_lanes) in zip(
            balanced.window_col_maps, loaded.window_col_maps
        ):
            np.testing.assert_array_equal(got_cols, cols)
            np.testing.assert_array_equal(got_lanes, lanes)

    def test_slot_join_and_data_order_roundtrip(self, square_matrix, tmp_path):
        """Persisted joins equal what a cold scheduler would recompute."""
        from repro.core.scheduler import slot_value_sources

        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        steps, lanes, source = slot_value_sources(schedule, balanced.matrix)
        order = np.lexsort(
            (square_matrix.cols, balanced.row_perm[square_matrix.rows])
        )
        path = tmp_path / "joined.sched"
        save_schedule(
            path, schedule, balanced,
            slots=(steps, lanes, source), data_order=order,
        )
        entry = load_schedule_entry(path)
        np.testing.assert_array_equal(entry.slot_steps, steps)
        np.testing.assert_array_equal(entry.slot_lanes, lanes)
        np.testing.assert_array_equal(entry.slot_source, source)
        # Only the inverse permutation is persisted; it must invert the
        # data_order the writer was given.
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.size)
        np.testing.assert_array_equal(entry.inv_order, inverse)

        # Omitting the joins computes them at save time instead.
        bare = tmp_path / "bare.sched"
        save_schedule(bare, schedule, balanced)
        recomputed = load_schedule_entry(bare)
        np.testing.assert_array_equal(recomputed.slot_steps, steps)
        np.testing.assert_array_equal(recomputed.slot_source, source)
        assert recomputed.data_order is None
        assert recomputed.inv_order is None

    def test_atomic_write_leaves_no_temporaries(self, square_matrix, tmp_path):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        for _ in range(3):
            save_schedule(tmp_path / "s.sched", schedule, balanced)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["s.sched"]

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_schedule(tmp_path / "absent.sched")


@pytest.fixture
def saved_schedule(square_matrix, tmp_path):
    pipeline = GustPipeline(32)
    schedule, balanced, _ = pipeline.preprocess(square_matrix)
    path = tmp_path / "schedule.sched"
    save_schedule(path, schedule, balanced)
    return path


class TestTamperResistance:
    def test_logically_corrupt_but_signed_schedule_rejected(self, saved_schedule):
        """A re-signed artifact aliasing two slots onto one adder still
        fails structural validation — the checksum is not the only gate."""

        def alias_destination(scalars, arrays):
            steps = arrays["slot_steps"]
            lanes = arrays["slot_lanes"]
            source = arrays["slot_source"]
            # Route the last slot to slot 0's timestep and destination row
            # via a lane that step leaves free: a unique (step, lane) slot
            # whose (step, row) pair collides with slot 0's adder.
            target = int(steps[0])
            used = set(lanes[steps == target].tolist())
            free = next(
                lane for lane in range(scalars["length"]) if lane not in used
            )
            steps[-1] = target
            lanes[-1] = free
            source[-1] = source[0]
            arrays["slot_rows"][-1] = arrays["slot_rows"][0]

        _rewrite(saved_schedule, alias_destination)
        with pytest.raises(ScheduleError, match="collision"):
            load_schedule(saved_schedule)

    def test_signed_out_of_range_slot_rejected(self, saved_schedule):
        def break_slot(scalars, arrays):
            arrays["slot_source"] = arrays["slot_source"].astype(np.int64)
            arrays["slot_source"][0] = 10**9

        _rewrite(saved_schedule, break_slot)
        with pytest.raises(ScheduleError, match="out-of-range"):
            load_schedule(saved_schedule)

    def test_bit_flip_in_payload_fails_checksum(self, saved_schedule):
        blob = bytearray(saved_schedule.read_bytes())
        blob[-8] ^= 0x01  # one bit, deep in the payload
        saved_schedule.write_bytes(bytes(blob))
        with pytest.raises(ScheduleError, match="checksum"):
            load_schedule(saved_schedule)

    def test_flipped_checksum_byte_rejected(self, saved_schedule):
        blob = bytearray(saved_schedule.read_bytes())
        blob[16] ^= 0xFF  # the stored CRC-32 lives at prologue offset 16
        saved_schedule.write_bytes(bytes(blob))
        with pytest.raises(ScheduleError, match="checksum"):
            load_schedule(saved_schedule)

    def test_wrong_version_rejected(self, saved_schedule):
        blob = bytearray(saved_schedule.read_bytes())
        blob[8:12] = (999).to_bytes(4, "little")  # version field
        saved_schedule.write_bytes(bytes(blob))
        with pytest.raises(ScheduleError, match="version"):
            load_schedule(saved_schedule)

    def test_missing_member_rejected(self, saved_schedule):
        def drop_member(scalars, arrays):
            del arrays["row_perm"]

        _rewrite(saved_schedule, drop_member)
        with pytest.raises(ScheduleError, match="missing"):
            load_schedule(saved_schedule)

    @pytest.mark.parametrize("keep_fraction", [0.0, 0.3, 0.9])
    def test_truncated_file_rejected(self, saved_schedule, keep_fraction):
        data = saved_schedule.read_bytes()
        saved_schedule.write_bytes(data[: int(len(data) * keep_fraction)])
        with pytest.raises(ScheduleError):
            load_schedule(saved_schedule)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "noise.sched"
        path.write_bytes(os.urandom(4096))
        with pytest.raises(ScheduleError, match="not a schedule artifact"):
            load_schedule(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "other.sched"
        np.savez(path.with_suffix(".npz"), unrelated=np.arange(4))
        path.with_suffix(".npz").rename(path)
        with pytest.raises(ScheduleError, match="not a schedule artifact"):
            load_schedule(path)
