"""Tests for schedule persistence: round-trips, integrity, atomicity."""

import os

import numpy as np
import pytest

from repro import (
    GustPipeline,
    load_schedule,
    load_schedule_entry,
    save_schedule,
)
from repro.core.serialize import _load_container, _save_container
from repro.errors import ScheduleError


def _rewrite(path, mutate):
    """Load an artifact, apply ``mutate(scalars, arrays)``, re-save in place.

    Re-saving through the writer recomputes the integrity checksum, so
    this models a *logically* wrong artifact that is nonetheless signed;
    raw-byte corruption (which the checksum must catch) is done on the
    file bytes directly in the tests below.
    """
    scalars, views, _version = _load_container(path)
    arrays = {name: arr.copy() for name, arr in views.items()}
    mutate(scalars, arrays)
    _save_container(path, scalars, arrays)


class TestRoundtrip:
    def test_save_load_execute(self, square_matrix, rng, tmp_path):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        path = tmp_path / "schedule.sched"
        save_schedule(path, schedule, balanced)

        loaded_schedule, loaded_balanced = load_schedule(path)
        assert loaded_schedule.window_colors == schedule.window_colors
        assert loaded_schedule.shape == schedule.shape
        np.testing.assert_array_equal(loaded_schedule.m_sch, schedule.m_sch)
        np.testing.assert_array_equal(loaded_schedule.row_sch, schedule.row_sch)
        np.testing.assert_array_equal(loaded_schedule.col_sch, schedule.col_sch)
        x = rng.normal(size=square_matrix.shape[1])
        y = pipeline.execute(loaded_schedule, loaded_balanced, x)
        np.testing.assert_allclose(y, square_matrix.matvec(x))

    def test_roundtrip_without_load_balancing(self, small_matrix, rng, tmp_path):
        pipeline = GustPipeline(16, load_balance=False)
        schedule, balanced, _ = pipeline.preprocess(small_matrix)
        path = tmp_path / "plain.sched"
        save_schedule(path, schedule, balanced)
        loaded_schedule, loaded_balanced = load_schedule(path)
        x = rng.normal(size=small_matrix.shape[1])
        np.testing.assert_allclose(
            pipeline.execute(loaded_schedule, loaded_balanced, x),
            small_matrix.matvec(x),
        )

    def test_empty_matrix_roundtrip(self, tmp_path):
        from repro import CooMatrix

        pipeline = GustPipeline(8)
        empty = CooMatrix.empty((16, 16))
        schedule, balanced, _ = pipeline.preprocess(empty)
        path = tmp_path / "empty.sched"
        save_schedule(path, schedule, balanced)
        loaded_schedule, _ = load_schedule(path)
        assert loaded_schedule.nnz == 0
        assert loaded_schedule.window_colors == schedule.window_colors

    def test_stalls_metadata_roundtrip(self, square_matrix, tmp_path):
        pipeline = GustPipeline(32, algorithm="naive")
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        stalls = pipeline.scheduler.last_stalls
        assert stalls > 0
        path = tmp_path / "naive.sched"
        save_schedule(path, schedule, balanced, stalls=stalls)
        entry = load_schedule_entry(path)
        assert entry.stalls == stalls

    def test_window_col_maps_roundtrip_exactly(self, square_matrix, tmp_path):
        """The flattened map encoding restores every per-window pair."""
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        path = tmp_path / "maps.sched"
        save_schedule(path, schedule, balanced)
        _, loaded = load_schedule(path)
        assert len(loaded.window_col_maps) == len(balanced.window_col_maps)
        for (cols, lanes), (got_cols, got_lanes) in zip(
            balanced.window_col_maps, loaded.window_col_maps
        ):
            np.testing.assert_array_equal(got_cols, cols)
            np.testing.assert_array_equal(got_lanes, lanes)

    def test_slot_join_and_data_order_roundtrip(self, square_matrix, tmp_path):
        """Persisted joins equal what a cold scheduler would recompute."""
        from repro.core.scheduler import slot_value_sources

        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        steps, lanes, source = slot_value_sources(schedule, balanced.matrix)
        order = np.lexsort(
            (square_matrix.cols, balanced.row_perm[square_matrix.rows])
        )
        path = tmp_path / "joined.sched"
        save_schedule(
            path, schedule, balanced,
            slots=(steps, lanes, source), data_order=order,
        )
        entry = load_schedule_entry(path)
        # Version 3 persists the slot join pre-sorted by destination row
        # (the execution plan's layout); the reordering is a permutation
        # of the scan-order join the writer was given.
        plan_order = np.argsort(balanced.matrix.rows[source], kind="stable")
        np.testing.assert_array_equal(entry.slot_steps, steps[plan_order])
        np.testing.assert_array_equal(entry.slot_lanes, lanes[plan_order])
        np.testing.assert_array_equal(entry.slot_source, source[plan_order])
        # Only the inverse permutation is persisted; it must invert the
        # data_order the writer was given.
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.size)
        np.testing.assert_array_equal(entry.inv_order, inverse)

        # Omitting the joins computes them at save time instead.
        bare = tmp_path / "bare.sched"
        save_schedule(bare, schedule, balanced)
        recomputed = load_schedule_entry(bare)
        np.testing.assert_array_equal(recomputed.slot_steps, steps[plan_order])
        np.testing.assert_array_equal(
            recomputed.slot_source, source[plan_order]
        )
        assert recomputed.data_order is None
        assert recomputed.inv_order is None

    def test_atomic_write_leaves_no_temporaries(self, square_matrix, tmp_path):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        for _ in range(3):
            save_schedule(tmp_path / "s.sched", schedule, balanced)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["s.sched"]

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_schedule(tmp_path / "absent.sched")


@pytest.fixture
def saved_schedule(square_matrix, tmp_path):
    pipeline = GustPipeline(32)
    schedule, balanced, _ = pipeline.preprocess(square_matrix)
    path = tmp_path / "schedule.sched"
    save_schedule(path, schedule, balanced)
    return path


class TestTamperResistance:
    def test_logically_corrupt_but_signed_schedule_rejected(self, saved_schedule):
        """A re-signed artifact aliasing two slots onto one adder still
        fails structural validation — the checksum is not the only gate."""

        def alias_destination(scalars, arrays):
            steps = arrays["slot_steps"]
            lanes = arrays["slot_lanes"]
            source = arrays["slot_source"]
            # Route the last slot to slot 0's timestep and destination row
            # via a lane that step leaves free: a unique (step, lane) slot
            # whose (step, row) pair collides with slot 0's adder.
            target = int(steps[0])
            used = set(lanes[steps == target].tolist())
            free = next(
                lane for lane in range(scalars["length"]) if lane not in used
            )
            steps[-1] = target
            lanes[-1] = free
            source[-1] = source[0]
            arrays["slot_rows"][-1] = arrays["slot_rows"][0]

        _rewrite(saved_schedule, alias_destination)
        with pytest.raises(ScheduleError, match="collision"):
            load_schedule(saved_schedule)

    def test_signed_zero_colors_with_nonzeros_rejected(self, saved_schedule):
        """total == 0 with nnz > 0 must fail at load on every path (the
        lazy dense rebuild would otherwise defer the failure past the
        store's quarantine window)."""

        def empty_colors(scalars, arrays):
            arrays["window_colors"] = np.zeros(
                arrays["window_colors"].size, dtype=np.int16
            )

        _rewrite(saved_schedule, empty_colors)
        with pytest.raises(ScheduleError, match="slots"):
            load_schedule_entry(saved_schedule, validate=False)

    def test_signed_duplicate_slot_rejected(self, saved_schedule):
        """Two slots on one (step, lane) coordinate merge in the dense
        scatter; the occupancy count must expose the collision."""

        def duplicate_slot(scalars, arrays):
            for name in ("slot_steps", "slot_lanes"):
                member = arrays[name].copy()
                member[1] = member[0]
                arrays[name] = member

        _rewrite(saved_schedule, duplicate_slot)
        with pytest.raises(ScheduleError, match="collide"):
            load_schedule(saved_schedule)

    def test_signed_out_of_range_slot_rejected(self, saved_schedule):
        def break_slot(scalars, arrays):
            arrays["slot_source"] = arrays["slot_source"].astype(np.int64)
            arrays["slot_source"][0] = 10**9

        _rewrite(saved_schedule, break_slot)
        with pytest.raises(ScheduleError, match="out-of-range"):
            load_schedule(saved_schedule)

    def test_bit_flip_in_payload_fails_checksum(self, saved_schedule):
        blob = bytearray(saved_schedule.read_bytes())
        blob[-8] ^= 0x01  # one bit, deep in the payload
        saved_schedule.write_bytes(bytes(blob))
        with pytest.raises(ScheduleError, match="checksum"):
            load_schedule(saved_schedule)

    def test_flipped_checksum_byte_rejected(self, saved_schedule):
        blob = bytearray(saved_schedule.read_bytes())
        blob[16] ^= 0xFF  # the stored CRC-32 lives at prologue offset 16
        saved_schedule.write_bytes(bytes(blob))
        with pytest.raises(ScheduleError, match="checksum"):
            load_schedule(saved_schedule)

    def test_wrong_version_rejected(self, saved_schedule):
        blob = bytearray(saved_schedule.read_bytes())
        blob[8:12] = (999).to_bytes(4, "little")  # version field
        saved_schedule.write_bytes(bytes(blob))
        with pytest.raises(ScheduleError, match="version"):
            load_schedule(saved_schedule)

    def test_missing_member_rejected(self, saved_schedule):
        def drop_member(scalars, arrays):
            del arrays["row_perm"]

        _rewrite(saved_schedule, drop_member)
        with pytest.raises(ScheduleError, match="missing"):
            load_schedule(saved_schedule)

    @pytest.mark.parametrize("keep_fraction", [0.0, 0.3, 0.9])
    def test_truncated_file_rejected(self, saved_schedule, keep_fraction):
        data = saved_schedule.read_bytes()
        saved_schedule.write_bytes(data[: int(len(data) * keep_fraction)])
        with pytest.raises(ScheduleError):
            load_schedule(saved_schedule)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "noise.sched"
        path.write_bytes(os.urandom(4096))
        with pytest.raises(ScheduleError, match="not a schedule artifact"):
            load_schedule(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "other.sched"
        np.savez(path.with_suffix(".npz"), unrelated=np.arange(4))
        path.with_suffix(".npz").rename(path)
        with pytest.raises(ScheduleError, match="not a schedule artifact"):
            load_schedule(path)


class TestExecutionPlanPersistence:
    """Version 3 persists the plan sort; version 2 recompiles it on load."""

    def test_v3_artifact_is_replay_ready(self, square_matrix, rng, tmp_path):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        path = tmp_path / "planned.sched"
        save_schedule(path, schedule, balanced)
        entry = load_schedule_entry(path)
        assert entry.plan is not None
        entry.plan.validate()
        x = rng.normal(size=square_matrix.shape[1])
        # The reconstituted plan replays bit-identically to a live one.
        live = pipeline.plan_for(schedule, balanced)
        np.testing.assert_array_equal(entry.plan.execute(x), live.execute(x))

    def test_persisted_order_equals_live_plan(self, square_matrix, tmp_path):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        live = pipeline.plan_for(schedule, balanced)
        path = tmp_path / "ordered.sched"
        save_schedule(path, schedule, balanced, plan_order=live.slot_order)
        entry = load_schedule_entry(path)
        # The artifact's slots are persisted pre-sorted, so the loaded
        # plan's slot order is the identity (None) — but its sorted
        # arrays must equal the live plan's exactly.
        assert entry.plan.slot_order is None
        np.testing.assert_array_equal(entry.plan.rows, live.rows)
        np.testing.assert_array_equal(entry.plan.values, live.values)
        np.testing.assert_array_equal(entry.plan.sources, live.sources)
        np.testing.assert_array_equal(entry.plan.seg_starts, live.seg_starts)

    def test_legacy_v2_artifact_recompiles_plan(self, rng):
        """The committed pre-bump fixture must keep loading: same schedule
        semantics, plan rebuilt from scratch (ISSUE 3 compatibility)."""
        from pathlib import Path

        fixture = Path(__file__).parent.parent / "data" / "legacy_v2.sched"
        entry = load_schedule_entry(fixture)
        assert entry.plan is not None
        entry.plan.validate()
        entry.schedule.validate()
        expected = np.load(
            Path(__file__).parent.parent / "data" / "legacy_v2_expected.npz"
        )
        np.testing.assert_allclose(
            entry.plan.execute(expected["x"]), expected["y"]
        )

    def test_signed_unsorted_slots_rejected(self, saved_schedule):
        """Version 3 persists slots sorted by destination row; a re-signed
        artifact violating that invariant must fail validation (the plan
        would otherwise mis-replay through its segment boundaries)."""

        def unsort_slots(scalars, arrays):
            rows = arrays["slot_rows"].astype(np.int64)
            # Swap two slots from different destination rows, consistently
            # across every per-slot member, so the schedule itself stays
            # structurally valid but the sort invariant breaks.
            others = np.flatnonzero(rows != rows[0])
            assert others.size, "fixture needs at least two distinct rows"
            j = int(others[0])
            for name in ("slot_steps", "slot_lanes", "slot_rows", "slot_source"):
                member = arrays[name].copy()
                member[0], member[j] = member[j], member[0]
                arrays[name] = member

        _rewrite(saved_schedule, unsort_slots)
        with pytest.raises(ScheduleError, match="not sorted"):
            load_schedule(saved_schedule)
