"""Tests for the pattern-keyed schedule cache."""

import numpy as np
import pytest

from repro import (
    CooMatrix,
    GustPipeline,
    GustSpmm,
    ScheduleCache,
    uniform_random,
)
from repro.errors import HardwareConfigError
from repro.solvers.cg import conjugate_gradient


def _spd_matrix(n: int, seed: int) -> CooMatrix:
    """A small diagonally dominant SPD matrix."""
    base = uniform_random(n, n, density=0.08, seed=seed)
    sym_rows = np.concatenate([base.rows, base.cols, np.arange(n)])
    sym_cols = np.concatenate([base.cols, base.rows, np.arange(n)])
    sym_data = np.concatenate(
        [np.abs(base.data), np.abs(base.data), np.full(n, 50.0)]
    )
    return CooMatrix.from_arrays(sym_rows, sym_cols, sym_data, (n, n))


class TestCacheSemantics:
    def test_miss_then_hit(self, square_matrix):
        cache = ScheduleCache()
        pipeline = GustPipeline(32, cache=cache)
        _, _, first = pipeline.preprocess(square_matrix)
        assert first.notes["cache_hit"] == 0.0
        assert cache.stats.misses == 1

        schedule, balanced, second = pipeline.preprocess(square_matrix)
        assert second.notes["cache_hit"] == 1.0
        assert cache.stats.hits == 1
        # The cached schedule is still numerically exact.
        x = np.random.default_rng(0).normal(size=square_matrix.shape[1])
        np.testing.assert_allclose(
            pipeline.execute(schedule, balanced, x), square_matrix.matvec(x)
        )

    def test_value_change_refreshes_without_recoloring(self, square_matrix, rng):
        cache = ScheduleCache()
        pipeline = GustPipeline(32, cache=cache)
        cold_schedule, _, _ = pipeline.preprocess(square_matrix)

        updated = square_matrix.with_data(
            rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        )
        schedule, balanced, report = pipeline.preprocess(updated)
        assert report.notes["cache_refresh"] == 1.0
        assert cache.stats.refreshes == 1
        # Coloring (structure) identical; only values moved.
        assert schedule.window_colors == cold_schedule.window_colors
        np.testing.assert_array_equal(schedule.row_sch, cold_schedule.row_sch)
        np.testing.assert_array_equal(schedule.col_sch, cold_schedule.col_sch)
        x = rng.normal(size=updated.shape[1])
        np.testing.assert_allclose(
            pipeline.execute(schedule, balanced, x), updated.matvec(x)
        )

    def test_refreshed_schedule_equals_cold_schedule(self, square_matrix, rng):
        """A refresh must equal scheduling the updated matrix from scratch."""
        updated = square_matrix.with_data(
            rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        )
        for algorithm in ("matching", "first_fit", "euler"):
            cached = GustPipeline(32, algorithm=algorithm, cache=True)
            cached.preprocess(square_matrix)
            via_cache, _, _ = cached.preprocess(updated)
            cold, _, _ = GustPipeline(32, algorithm=algorithm).preprocess(
                updated
            )
            assert via_cache.window_colors == cold.window_colors
            np.testing.assert_array_equal(via_cache.m_sch, cold.m_sch)
            np.testing.assert_array_equal(via_cache.row_sch, cold.row_sch)
            np.testing.assert_array_equal(via_cache.col_sch, cold.col_sch)

    def test_refresh_then_hit_on_same_values(self, square_matrix, rng):
        pipeline = GustPipeline(32, cache=True)
        pipeline.preprocess(square_matrix)
        updated = square_matrix.with_data(
            rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        )
        pipeline.preprocess(updated)
        pipeline.preprocess(updated)
        assert pipeline.cache.stats.refreshes == 1
        assert pipeline.cache.stats.hits == 1

    def test_in_place_value_mutation_is_not_a_stale_hit(self, square_matrix, rng):
        """Mutating matrix.data in place must not return the old schedule."""
        pipeline = GustPipeline(32, cache=True)
        pipeline.preprocess(square_matrix)
        square_matrix.data[:] = rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        schedule, balanced, report = pipeline.preprocess(square_matrix)
        assert report.notes["cache_refresh"] == 1.0
        x = rng.normal(size=square_matrix.shape[1])
        np.testing.assert_allclose(
            pipeline.execute(schedule, balanced, x), square_matrix.matvec(x)
        )

    def test_different_pattern_misses(self, square_matrix, small_matrix):
        pipeline = GustPipeline(32, cache=True)
        pipeline.preprocess(square_matrix)
        pipeline.preprocess(small_matrix)
        assert pipeline.cache.stats.misses == 2
        assert len(pipeline.cache) == 2

    def test_configuration_is_part_of_the_key(self, square_matrix):
        cache = ScheduleCache()
        GustPipeline(32, cache=cache).preprocess(square_matrix)
        GustPipeline(32, algorithm="first_fit", cache=cache).preprocess(
            square_matrix
        )
        GustPipeline(16, cache=cache).preprocess(square_matrix)
        assert cache.stats.misses == 3
        assert cache.stats.hits == 0

    def test_lru_eviction(self, rng):
        cache = ScheduleCache(capacity=2)
        pipeline = GustPipeline(16, cache=cache)
        matrices = [uniform_random(40, 40, 0.1, seed=s) for s in range(3)]
        for matrix in matrices:
            pipeline.preprocess(matrix)
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        # The oldest entry (seed 0) was evicted; re-preprocessing misses.
        pipeline.preprocess(matrices[0])
        assert cache.stats.misses == 4

    def test_clear(self, square_matrix):
        pipeline = GustPipeline(32, cache=True)
        pipeline.preprocess(square_matrix)
        pipeline.cache.clear()
        assert len(pipeline.cache) == 0
        pipeline.preprocess(square_matrix)
        assert pipeline.cache.stats.misses == 2

    def test_invalid_capacity(self):
        with pytest.raises(HardwareConfigError, match="capacity"):
            ScheduleCache(capacity=0)

    def test_pipeline_cache_parameter_forms(self, small_matrix):
        assert GustPipeline(16).cache is None
        assert GustPipeline(16, cache=False).cache is None
        assert GustPipeline(16, cache=True).cache is not None
        sized = GustPipeline(16, cache=3)
        assert sized.cache.capacity == 3
        shared = ScheduleCache()
        assert GustPipeline(16, cache=shared).cache is shared


class TestCacheIntegration:
    def test_shared_cache_across_pipelines(self, square_matrix):
        cache = ScheduleCache()
        GustPipeline(32, cache=cache).preprocess(square_matrix)
        _, _, report = GustPipeline(32, cache=cache).preprocess(square_matrix)
        assert report.notes["cache_hit"] == 1.0

    def test_spmm_reuses_schedule_across_blocks(self, square_matrix, rng):
        spmm = GustSpmm(32, cache=True)
        dense = rng.normal(size=(square_matrix.shape[1], 3))
        first = spmm.spmm(square_matrix, dense)
        second = spmm.spmm(square_matrix, dense)
        assert spmm.pipeline.cache.stats.hits == 1
        np.testing.assert_allclose(first.y, second.y)
        # New values, same pattern: refresh, not a cold pass.
        reweighted = square_matrix.with_data(
            rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        )
        result = spmm.spmm(reweighted, dense)
        assert spmm.pipeline.cache.stats.refreshes == 1
        expected = np.column_stack(
            [reweighted.matvec(dense[:, j]) for j in range(3)]
        )
        np.testing.assert_allclose(result.y, expected)

    def test_solver_sequence_amortizes_preprocessing(self, rng):
        matrix = _spd_matrix(48, seed=1)
        pipeline = GustPipeline(16, cache=True)
        b = rng.normal(size=48)
        first = conjugate_gradient(matrix, b, pipeline=pipeline)
        assert first.converged
        # Same pattern, re-assembled values: the coloring is not repeated.
        reassembled = matrix.with_data(matrix.data * 1.5)
        second = conjugate_gradient(reassembled, b, pipeline=pipeline)
        assert second.converged
        stats = pipeline.cache.stats
        assert stats.misses == 1
        assert stats.refreshes == 1
        np.testing.assert_allclose(
            reassembled.matvec(second.x), b, atol=1e-6 * np.linalg.norm(b)
        )

    def test_naive_stalls_survive_caching(self, square_matrix):
        pipeline = GustPipeline(32, algorithm="naive", cache=True)
        pipeline.preprocess(square_matrix)
        cold_stalls = pipeline.scheduler.last_stalls
        assert cold_stalls > 0
        pipeline.scheduler.last_stalls = -1
        _, _, report = pipeline.preprocess(square_matrix)
        assert report.notes["cache_hit"] == 1.0
        assert pipeline.scheduler.last_stalls == cold_stalls


class TestThreadSafety:
    """The cache is shared by a serving registry across threads."""

    def test_concurrent_lookups_and_inserts(self):
        import threading

        matrices = [uniform_random(64, 64, 0.08, seed=s) for s in range(4)]
        cache = ScheduleCache(capacity=3)  # smaller than the working set
        errors = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            pipeline = GustPipeline(16, cache=cache)
            rng = np.random.default_rng(index)
            try:
                for round_ in range(12):
                    matrix = matrices[(index + round_) % len(matrices)]
                    schedule, balanced, _ = pipeline.preprocess(matrix)
                    x = rng.normal(size=matrix.shape[1])
                    y = pipeline.execute(schedule, balanced, x)
                    if not np.allclose(y, matrix.matvec(x)):
                        raise AssertionError("wrong result under threads")
            except Exception as error:  # noqa: BLE001 - recorded for assert
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = cache.stats
        assert stats.lookups == 8 * 12
        assert stats.hits + stats.refreshes + stats.misses == stats.lookups
        assert len(cache) <= 3

    def test_concurrent_value_refreshes_stay_consistent(self):
        import threading

        base = uniform_random(48, 48, 0.1, seed=7)
        cache = ScheduleCache(capacity=2)
        variants = [
            base.with_data(base.data * factor)
            for factor in (1.0, 2.0, 3.0, 4.0)
        ]
        errors = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            pipeline = GustPipeline(16, cache=cache)
            rng = np.random.default_rng(index)
            try:
                for round_ in range(10):
                    matrix = variants[(index + round_) % len(variants)]
                    schedule, balanced, _ = pipeline.preprocess(matrix)
                    x = rng.normal(size=matrix.shape[1])
                    y = pipeline.execute(schedule, balanced, x)
                    # The schedule/balanced pair handed back must be
                    # internally consistent even while other threads
                    # refresh the shared entry to different values.
                    if not np.allclose(
                        y,
                        balanced.unpermute_output(
                            balanced.matrix.matvec(x)
                        ),
                    ):
                        raise AssertionError("torn refresh observed")
            except Exception as error:  # noqa: BLE001 - recorded for assert
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.stats.refreshes > 0
