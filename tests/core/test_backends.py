"""Execution-backend registry, capability, and equivalence tests.

The heart is the cross-backend equivalence matrix: every registered
backend is run against the ``np.add.at`` scatter oracle on adversarial
shapes (empty rows, a single giant window, ``k % tile != 0`` blocks,
float32/float64 inputs).  Backends whose effective ``bit_identical`` flag
is true must agree **bit for bit**; the rest (``reduceat``) must agree to
``allclose``.  Alongside it: registry resolution (unknown names, the
``GUST_BACKEND`` override, ``auto`` selection), the typed
``BackendCapabilityError`` that replaced the silent NumPy 2.x
``reduceat`` hazard, in-place value refreshes, and proof that the
removed ``use_plans=``/``executor()`` shims stay removed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CompiledSpmv, GustPipeline, GustSpmm, uniform_random
from repro.core.backends import (
    available_backends,
    compile_plan,
    get_backend,
    probe_bit_identity,
    register_backend,
    registered_backends,
    scatter_matvec,
)
from repro.core.backends.base import (
    BackendCapabilities,
    CompiledKernel,
    ReplayBackend,
)
from repro.core.pipeline import LEGACY_SCATTER
from repro.core.plan import ExecutionPlan
from repro.errors import (
    BackendCapabilityError,
    BackendError,
    HardwareConfigError,
    ScheduleError,
)
from repro.sparse.coo import CooMatrix


def _plan_for(matrix, length=16):
    pipeline = GustPipeline(length)
    schedule, balanced, _ = pipeline.preprocess(matrix)
    return pipeline.plan_for(schedule, balanced)


def _empty_rows_matrix():
    """Rows 3, 7, 11 (and more) carry no nonzeros at all."""
    rows = np.array([0, 0, 1, 2, 4, 5, 5, 6, 8, 9, 10, 12])
    cols = np.array([1, 5, 2, 0, 3, 1, 4, 2, 5, 0, 3, 1])
    data = np.linspace(1.0, 2.0, rows.size)
    return CooMatrix.from_arrays(rows, cols, data, (13, 6))


def _giant_window_matrix():
    """One dense-ish row far heavier than the accelerator length."""
    m = uniform_random(24, 24, 0.05, seed=9)
    heavy_cols = np.arange(24)
    rows = np.concatenate([m.rows, np.full(24, 5)])
    cols = np.concatenate([m.cols, heavy_cols])
    data = np.concatenate([m.data, np.linspace(0.5, 1.5, 24)])
    # Deduplicate (row, col) pairs, keeping the first occurrence.
    keys = rows * 24 + cols
    _, keep = np.unique(keys, return_index=True)
    return CooMatrix.from_arrays(rows[keep], cols[keep], data[keep], (24, 24))


ADVERSARIAL = {
    "empty_rows": _empty_rows_matrix,
    "giant_window": _giant_window_matrix,
    "rectangular": lambda: uniform_random(50, 130, 0.07, seed=21),
    "empty": lambda: CooMatrix.empty((5, 3)),
}


def _backend_names():
    return sorted(available_backends())


class TestEquivalenceMatrix:
    """Every registered backend vs. the scatter oracle."""

    @pytest.mark.parametrize("backend", _backend_names())
    @pytest.mark.parametrize("shape_name", sorted(ADVERSARIAL))
    def test_matvec_matches_oracle(self, backend, shape_name, rng):
        matrix = ADVERSARIAL[shape_name]()
        plan = _plan_for(matrix)
        compiled = compile_plan(plan, backend=backend)
        for dtype in (np.float64, np.float32):
            x = rng.normal(size=matrix.shape[1]).astype(dtype)
            oracle = scatter_matvec(plan, np.asarray(x, dtype=np.float64))
            got = compiled.kernel.matvec(x)
            if compiled.bit_identical:
                np.testing.assert_array_equal(got, oracle)
            else:
                np.testing.assert_allclose(got, oracle)
            if matrix.nnz:
                np.testing.assert_allclose(
                    got,
                    matrix.matvec(np.asarray(x, dtype=np.float64)),
                    rtol=1e-6,
                )

    @pytest.mark.parametrize("backend", _backend_names())
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matmat_matches_per_column_matvec(self, backend, k, rng):
        """Block replay == stacked matvec, including k % tile != 0 tiling."""
        matrix = uniform_random(40, 60, 0.08, seed=7)
        plan = _plan_for(matrix)
        compiled = compile_plan(plan, backend=backend)
        dense = rng.normal(size=(60, k))
        # tile_budget forces a tile width of 1 (and k % tile == k % 2 != 0
        # for the larger budget), exercising every tile boundary.
        for budget in (1, 2 * plan.nnz + 1, 1 << 26):
            block = compiled.kernel.matmat(dense, tile_budget=budget)
            assert block.shape == (40, k)
            for j in range(k):
                column = compiled.kernel.matvec(dense[:, j])
                if compiled.bit_identical:
                    np.testing.assert_array_equal(block[:, j], column)
                else:
                    np.testing.assert_allclose(block[:, j], column)

    @pytest.mark.parametrize("backend", _backend_names())
    def test_shape_validation(self, backend):
        plan = _plan_for(uniform_random(10, 8, 0.2, seed=1))
        kernel = compile_plan(plan, backend=backend).kernel
        with pytest.raises(HardwareConfigError, match="incompatible"):
            kernel.matvec(np.zeros(9))
        with pytest.raises(HardwareConfigError, match="dense operand"):
            kernel.matmat(np.zeros((9, 2)))

    def test_bit_identical_backends_agree_with_each_other(self, rng):
        matrix = uniform_random(64, 64, 0.1, seed=3)
        plan = _plan_for(matrix)
        x = rng.normal(size=64)
        results = {}
        for name in _backend_names():
            compiled = compile_plan(plan, backend=name)
            if compiled.bit_identical:
                results[name] = compiled.kernel.matvec(x)
        assert len(results) >= 2  # scatter + bincount at minimum
        reference = results.pop("scatter")
        for name, got in results.items():
            np.testing.assert_array_equal(got, reference, err_msg=name)


class TestRegistry:
    def test_unknown_backend_name(self):
        plan = _plan_for(uniform_random(8, 8, 0.2, seed=1))
        with pytest.raises(BackendError, match="unknown backend 'gpu'"):
            compile_plan(plan, backend="gpu")
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("gpu")

    def test_builtins_registered_with_expected_flags(self):
        caps = available_backends()
        assert {"scatter", "bincount", "reduceat"} <= set(caps)
        assert caps["scatter"].bit_identical
        assert caps["bincount"].bit_identical
        assert not caps["reduceat"].bit_identical
        if "scipy" in caps:
            assert caps["scipy"].probed
        for flags in caps.values():
            assert flags.supports_block and flags.thread_safe

    def test_duplicate_registration_rejected(self):
        backend = registered_backends()["scatter"]
        with pytest.raises(BackendError, match="already registered"):
            register_backend(backend)
        # replace=True swaps (and restores) without error.
        register_backend(backend, replace=True)

    def test_auto_selects_bit_identical(self, monkeypatch):
        monkeypatch.delenv("GUST_BACKEND", raising=False)
        plan = _plan_for(uniform_random(20, 20, 0.1, seed=2))
        compiled = compile_plan(plan, backend="auto")
        assert compiled.bit_identical
        assert compiled.name in ("scipy", "bincount")

    def test_env_override_selects_backend(self, monkeypatch):
        plan = _plan_for(uniform_random(20, 20, 0.1, seed=2))
        monkeypatch.setenv("GUST_BACKEND", "scatter")
        assert compile_plan(plan, backend="auto").name == "scatter"
        # Explicit names win over the environment.
        assert compile_plan(plan, backend="bincount").name == "bincount"

    def test_env_override_unknown_name_fails_loudly(self, monkeypatch):
        plan = _plan_for(uniform_random(20, 20, 0.1, seed=2))
        monkeypatch.setenv("GUST_BACKEND", "typo")
        with pytest.raises(BackendError, match="unknown backend"):
            compile_plan(plan, backend="auto")

    def test_env_override_skipped_when_capability_missing(self, monkeypatch):
        """GUST_BACKEND=reduceat cannot hijack an exactness-requiring
        caller: the override is skipped with a warning, not honored."""
        plan = _plan_for(uniform_random(20, 20, 0.1, seed=2))
        monkeypatch.setenv("GUST_BACKEND", "reduceat")
        assert compile_plan(plan, backend="auto").name == "reduceat"
        with pytest.warns(RuntimeWarning, match="falling back"):
            compiled = compile_plan(
                plan, backend="auto", require_bit_identical=True
            )
        assert compiled.name != "reduceat"
        assert compiled.bit_identical

    def test_probe_confirms_oracle(self):
        plan = _plan_for(uniform_random(30, 30, 0.1, seed=4))
        for name in _backend_names():
            kernel = get_backend(name).compile(plan)
            verdict = probe_bit_identity(kernel, plan)
            if get_backend(name).capabilities.bit_identical:
                assert verdict, name


class _BrokenKernel(CompiledKernel):
    """A 'bit-identical' claim that the probe must falsify."""

    def matvec(self, x):
        return scatter_matvec(self._plan, np.asarray(x, dtype=np.float64)) + 1e-12

    def matmat(self, dense, tile_budget=1 << 26):
        return np.stack(
            [self.matvec(dense[:, j]) for j in range(dense.shape[1])], axis=1
        )


class _BrokenBackend(ReplayBackend):
    name = "broken-probe-test"
    capabilities = BackendCapabilities(
        bit_identical=True, supports_block=True, thread_safe=True, probed=True
    )

    def compile(self, plan):
        return _BrokenKernel(plan)


class TestProbedBackends:
    def test_failed_probe_downgrades_and_blocks_exactness(self):
        register_backend(_BrokenBackend())
        try:
            plan = _plan_for(uniform_random(20, 20, 0.1, seed=5))
            compiled = compile_plan(plan, backend="broken-probe-test")
            assert compiled.probe_verdict is False
            assert not compiled.bit_identical
            with pytest.raises(BackendCapabilityError, match="bit-identical"):
                compile_plan(
                    plan,
                    backend="broken-probe-test",
                    require_bit_identical=True,
                )
        finally:
            from repro.core.backends import registry as registry_module

            registry_module._REGISTRY.pop("broken-probe-test", None)


class TestCapabilityErrors:
    def test_reduceat_with_exactness_is_typed_error(self):
        """The NumPy 2.x reduceat hazard is a typed error, not an
        allclose-only gate."""
        matrix = uniform_random(30, 30, 0.1, seed=6)
        pipeline = GustPipeline(16)
        with pytest.raises(BackendCapabilityError, match="reduceat"):
            pipeline.compile(matrix, backend="reduceat",
                             require_bit_identical=True)

    def test_spmm_engine_honors_requirement(self, square_matrix, rng):
        engine = GustSpmm(32, backend="reduceat", require_bit_identical=True)
        dense = rng.normal(size=(square_matrix.shape[1], 3))
        with pytest.raises(BackendCapabilityError):
            engine.spmm(square_matrix, dense)

    def test_spmm_auto_is_bit_identical_per_column(self, square_matrix, rng):
        engine = GustSpmm(32)  # default backend="auto"
        dense = rng.normal(size=(square_matrix.shape[1], 5))
        result = engine.spmm(square_matrix, dense)
        pipeline = GustPipeline(32)
        compiled = pipeline.compile(square_matrix)
        for j in range(5):
            np.testing.assert_array_equal(
                result.y[:, j], compiled.matvec(dense[:, j])
            )


class TestCompiledSpmvHandle:
    def test_compile_returns_handle_with_stats(self, square_matrix, rng):
        pipeline = GustPipeline(32, cache=True)
        compiled = pipeline.compile(square_matrix)
        assert isinstance(compiled, CompiledSpmv)
        assert compiled.backend_name in available_backends()
        assert compiled.stats.bit_identical
        assert compiled.stats.nnz == compiled.plan.nnz
        assert compiled.stats.shape == square_matrix.shape
        assert compiled.stats.preprocess is not None
        x = rng.normal(size=square_matrix.shape[1])
        np.testing.assert_allclose(
            compiled.matvec(x), square_matrix.matvec(x)
        )
        assert compiled(x) is not None  # __call__ alias
        # Memoized per schedule object with a warm cache.
        assert pipeline.compile(square_matrix) is compiled

    def test_legacy_backend_handle(self, square_matrix, rng):
        pipeline = GustPipeline(32, backend=LEGACY_SCATTER)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        compiled = pipeline.compile_schedule(schedule, balanced)
        assert compiled.plan is None
        assert compiled.backend_name == LEGACY_SCATTER
        x = rng.normal(size=square_matrix.shape[1])
        np.testing.assert_array_equal(
            compiled.matvec(x),
            pipeline.execute_scatter(schedule, balanced, x),
        )
        with pytest.raises(BackendError, match="legacy-scatter"):
            compiled.refresh_values(np.zeros(1))

    @pytest.mark.parametrize("backend", _backend_names())
    def test_refresh_values_in_place(self, backend, square_matrix, rng):
        """Same structure, new values: no recompile, updated results."""
        pipeline = GustPipeline(32, cache=True)
        compiled = pipeline.compile(square_matrix, backend=backend)
        kernel = compiled._kernel
        x = rng.normal(size=square_matrix.shape[1])
        before = compiled.matvec(x)
        old_plan = compiled.plan
        # Doubling every value in balanced order must exactly double the
        # replay output (the replay is linear in the values).
        compiled.refresh_values(_balanced_stream(old_plan) * 2.0)
        assert compiled._kernel is kernel  # structure reused, no recompile
        after = compiled.matvec(x)
        if compiled.stats.bit_identical:
            np.testing.assert_array_equal(after, 2.0 * before)
        else:
            np.testing.assert_allclose(after, 2.0 * before)

    def test_refresh_rejects_foreign_structure(self, square_matrix):
        pipeline = GustPipeline(32)
        compiled = pipeline.compile(square_matrix)
        other = _plan_for(uniform_random(50, 130, 0.07, seed=21), length=32)
        with pytest.raises(ScheduleError, match="pattern changed"):
            compiled.refresh_from_plan(other)

    @pytest.mark.parametrize("backend", _backend_names())
    def test_refresh_rejects_moved_sources(self, backend):
        """Same rows, same nnz, different source columns: a different
        matrix — backends with derived structure (scipy CSR indices)
        would silently keep the old columns if this were accepted."""

        def plan_with_sources(sources):
            return ExecutionPlan.from_sorted(
                length=4,
                shape=(4, 4),
                values=np.array([1.0, 2.0, 3.0]),
                sources=np.array(sources),
                rows=np.array([0, 1, 2]),
                slot_order=None,
                row_perm=np.arange(4),
            )

        kernel = get_backend(backend).compile(plan_with_sources([0, 1, 2]))
        with pytest.raises(ScheduleError, match="sources differ"):
            kernel.refresh_values(plan_with_sources([1, 2, 3]))


def _balanced_stream(plan: ExecutionPlan) -> np.ndarray:
    """Reconstruct the balanced-order value stream feeding ``plan``."""
    stream = np.empty(plan.nnz, dtype=np.float64)
    stream[plan.value_source] = plan.values
    return stream


class TestStackedReplayRefresh:
    def test_refresh_regathers_in_place(self, square_matrix, rng):
        from repro import StackedReplay

        pipeline = GustPipeline(32, cache=True)
        compiled = pipeline.compile(square_matrix)
        plan = compiled.plan
        for force_numpy in (False, True):
            kernel = StackedReplay(plan, force_numpy=force_numpy)
            inner = kernel._kernel
            stacked = rng.normal(size=(4, square_matrix.shape[1]))
            before = kernel.matvecs(stacked)
            refreshed = plan.with_values(_balanced_stream(plan) * -2.0)
            kernel.refresh_from_plan(refreshed)
            assert kernel._kernel is inner  # no recompile
            assert kernel.plan is refreshed
            np.testing.assert_array_equal(
                kernel.matvecs(stacked), -2.0 * before
            )

    def test_registry_reregistration_reuses_kernels(self, rng):
        """Re-registering a tenant with new values refreshes the pinned
        kernels in place instead of recompiling them (ROADMAP PR-4
        follow-on)."""
        from repro import MatrixRegistry

        matrix = uniform_random(48, 48, 0.1, seed=13)
        registry = MatrixRegistry(length=16)
        first = registry.register("A", matrix)
        updated = CooMatrix.from_arrays(
            matrix.rows, matrix.cols, matrix.data * 0.5, matrix.shape
        )
        second = registry.register("A", updated, replace=True)
        assert second is not first
        # Same kernel objects, refreshed values.
        assert second.stacked is first.stacked
        assert second.compiled is first.compiled
        assert second.plan is not first.plan
        assert second.preprocess.notes["cache_refresh"] == 1.0
        x = rng.normal(size=48)
        np.testing.assert_allclose(second.execute(x), updated.matvec(x))
        np.testing.assert_array_equal(
            second.stacked.matvecs(x[None, :])[:, 0], second.execute(x)
        )

    def test_registry_new_pattern_recompiles(self, rng):
        from repro import MatrixRegistry

        registry = MatrixRegistry(length=16)
        first = registry.register("A", uniform_random(48, 48, 0.1, seed=13))
        second = registry.register(
            "A", uniform_random(48, 48, 0.1, seed=14), replace=True
        )
        assert second.stacked is not first.stacked
        assert second.compiled is not first.compiled

    def test_registry_shares_one_kernel_per_tenant(self, rng):
        """Fresh registration wraps the per-request handle's kernel for
        batching instead of compiling (and probing) a second one."""
        from repro import MatrixRegistry

        registry = MatrixRegistry(length=16)
        entry = registry.register("A", uniform_random(48, 48, 0.1, seed=13))
        assert entry.stacked._kernel is entry.compiled._kernel
        assert entry.stacked.backend == entry.compiled.backend_name
        x = rng.normal(size=48)
        np.testing.assert_array_equal(
            entry.stacked.matvecs(x[None, :])[:, 0], entry.execute(x)
        )
        # The force_numpy pin still gets its own bincount kernel.
        pinned = registry.register(
            "B", uniform_random(48, 48, 0.1, seed=13),
            force_numpy_backend=True,
        )
        assert pinned.stacked.backend == "bincount"

    def test_registry_dropping_force_numpy_restores_sharing(self):
        """Re-registering without the force_numpy pin returns the tenant
        to the default shared kernel, like a fresh registration would."""
        from repro import MatrixRegistry

        matrix = uniform_random(48, 48, 0.1, seed=13)
        registry = MatrixRegistry(length=16)
        pinned = registry.register("A", matrix, force_numpy_backend=True)
        assert pinned.stacked.backend == "bincount"
        entry = registry.register("A", matrix, replace=True)
        assert entry.stacked._kernel is entry.compiled._kernel
        assert entry.stacked.backend == entry.compiled.backend_name

    def test_from_compiled_rejects_legacy_handle(self, square_matrix):
        from repro import StackedReplay

        pipeline = GustPipeline(16, backend=LEGACY_SCATTER)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        handle = pipeline.compile_schedule(schedule, balanced)
        with pytest.raises(BackendCapabilityError, match="no compiled plan"):
            StackedReplay.from_compiled(handle)


class TestShimsStayRemoved:
    """The one-release ``use_plans``/``executor`` shims are gone for good.

    Lint rule R3 proves no internal call sites remain; these tests prove
    the public surface rejects the old spellings outright instead of
    silently accepting and ignoring them.
    """

    def test_use_plans_kwarg_rejected(self):
        with pytest.raises(TypeError, match="use_plans"):
            GustPipeline(8, use_plans=True)
        with pytest.raises(TypeError, match="use_plans"):
            GustSpmm(8, use_plans=False)

    def test_use_plans_attribute_gone(self):
        assert not hasattr(GustPipeline(8), "use_plans")

    def test_executor_method_gone(self):
        assert not hasattr(GustPipeline(8), "executor")
