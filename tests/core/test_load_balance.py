"""Tests for the three-step load balancer, including the Figure 6 example."""

import numpy as np
import pytest

from repro import CooMatrix, GustScheduler, LoadBalancer
from repro.core.load_balance import identity_balance


@pytest.fixture
def figure6_matrix():
    """The paper's Figure 6 4x4 example.

    Row 0: M11 M12 M13 M14; row 1: M21; row 2: M31 M32 M33; row 3: M44.
    """
    rows = [0, 0, 0, 0, 1, 2, 2, 2, 3]
    cols = [0, 1, 2, 3, 0, 0, 1, 2, 3]
    return CooMatrix.from_arrays(
        np.array(rows), np.array(cols), np.arange(1.0, 10.0), (4, 4)
    )


class TestFigure6:
    def test_unbalanced_cost_is_seven(self, figure6_matrix):
        balanced = identity_balance(figure6_matrix, 2)
        bounds = balanced.color_lower_bounds(2)
        assert sum(bounds) == 7  # paper: 4 + 3 cycles

    def test_balanced_cost_is_five(self, figure6_matrix):
        balanced = LoadBalancer(2).balance(figure6_matrix)
        bounds = balanced.color_lower_bounds(2)
        assert sum(bounds) == 5  # paper: 4 + 1 after load balancing

    def test_row_sort_groups_heavy_rows(self, figure6_matrix):
        balanced = LoadBalancer(2).balance(figure6_matrix)
        counts = balanced.matrix.row_counts()
        assert counts.tolist() == [4, 3, 1, 1]


class TestPermutation:
    def test_row_perm_is_permutation(self, square_matrix):
        balanced = LoadBalancer(32).balance(square_matrix)
        assert sorted(balanced.row_perm.tolist()) == list(
            range(square_matrix.shape[0])
        )

    def test_unpermute_roundtrip(self, square_matrix, rng):
        balanced = LoadBalancer(32).balance(square_matrix)
        y_original = rng.normal(size=square_matrix.shape[0])
        y_permuted = y_original[np.argsort(balanced.row_perm)][
            np.arange(square_matrix.shape[0])
        ]
        # y_permuted[row_perm[i]] == y_original[i] by construction:
        y_permuted = np.empty_like(y_original)
        y_permuted[balanced.row_perm] = y_original
        np.testing.assert_array_equal(
            balanced.unpermute_output(y_permuted), y_original
        )

    def test_nnz_preserved(self, square_matrix):
        balanced = LoadBalancer(32).balance(square_matrix)
        assert balanced.matrix.nnz == square_matrix.nnz


class TestColsegMapping:
    def test_identity_flips_are_modulo(self, square_matrix):
        balanced = identity_balance(square_matrix, 32)
        cols = np.arange(square_matrix.shape[1])
        np.testing.assert_array_equal(
            balanced.colseg_of(0, cols, 32), cols % 32
        )

    def test_snake_dealing_assigns_distinct_lanes(self):
        # Two columns used once each in the window land on different
        # multipliers even though both are congruent mod l.
        matrix = CooMatrix.from_arrays(
            np.array([0, 1]), np.array([0, 2]), np.ones(2), (2, 4)
        )
        balanced = LoadBalancer(2).balance(matrix)
        segs = balanced.colseg_of(0, np.array([0, 2]), 2)
        assert sorted(segs.tolist()) == [0, 1]

    def test_unmapped_columns_fall_back_to_modulo(self, square_matrix):
        balanced = LoadBalancer(32).balance(square_matrix)
        # A column index absent from window 0 maps to col % l.
        absent = np.array([square_matrix.shape[1] - 1], dtype=np.int64)
        mask = (balanced.matrix.rows // 32) == 0
        if absent[0] not in set(balanced.matrix.cols[mask].tolist()):
            seg = balanced.colseg_of(0, absent, 32)
            assert seg.tolist() == [absent[0] % 32]

    def test_balancing_never_worsens_bound(self, square_matrix):
        length = 32
        before = sum(identity_balance(square_matrix, length).color_lower_bounds(length))
        after = sum(LoadBalancer(length).balance(square_matrix).color_lower_bounds(length))
        # Not a theorem in general, but holds on mixed-degree random
        # matrices and is the balancer's entire purpose.
        assert after <= before


class TestEndToEnd:
    def test_balanced_spmv_correct(self, square_matrix, rng):
        from repro import GustPipeline

        x = rng.normal(size=square_matrix.shape[1])
        pipeline = GustPipeline(32, load_balance=True, validate=True)
        result = pipeline.spmv(square_matrix, x)
        np.testing.assert_allclose(result.y, square_matrix.matvec(x))

    def test_balancing_reduces_cycles_on_skewed_input(self):
        from repro import power_law

        matrix = power_law(512, 512, 0.02, seed=3)
        scheduler = GustScheduler(64)
        plain = scheduler.schedule(matrix).execution_cycles
        balanced_input = LoadBalancer(64).balance(matrix)
        balanced = scheduler.schedule_balanced(balanced_input).execution_cycles
        assert balanced < plain
