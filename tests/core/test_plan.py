"""Tests for the prepared execution-plan replay engine.

The plan is the steady-state hot path, so the contract is strict: replay
must be **bit-identical** to the pre-plan scatter path (not merely close),
compile exactly once per schedule, refresh values without re-sorting, and
survive the cache/store tiers intact.
"""

import numpy as np
import pytest

from repro import (
    ExecutionPlan,
    GustPipeline,
    GustSpmm,
    uniform_random,
)
from repro.core.plan import DEFAULT_TILE_BUDGET
from repro.errors import HardwareConfigError, ScheduleError
from repro.sparse.coo import CooMatrix


@pytest.fixture
def prepared(square_matrix):
    pipeline = GustPipeline(32)
    schedule, balanced, _ = pipeline.preprocess(square_matrix)
    return pipeline, schedule, balanced


class TestCompile:
    def test_structure_is_row_sorted_csr(self, prepared):
        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        plan.validate()
        assert plan.nnz == schedule.nnz
        assert (np.diff(plan.rows) >= 0).all()
        assert plan.seg_starts[0] == 0
        assert plan.segments == np.unique(plan.rows).size
        # Segment rows are strictly increasing: one segment per dest row.
        assert (np.diff(plan.seg_rows) > 0).all()

    def test_memoized_per_schedule_object(self, prepared):
        pipeline, schedule, balanced = prepared
        assert pipeline.plan_for(schedule, balanced) is pipeline.plan_for(
            schedule, balanced
        )

    def test_from_schedule_without_slots(self, prepared):
        _, schedule, balanced = prepared
        plan = ExecutionPlan.from_schedule(schedule, row_perm=balanced.row_perm)
        plan.validate()
        assert plan.value_source is None
        with pytest.raises(ScheduleError, match="value-source"):
            plan.with_values(np.zeros(plan.nnz))

    def test_empty_matrix(self):
        matrix = CooMatrix.empty((7, 5))
        pipeline = GustPipeline(4)
        schedule, balanced, _ = pipeline.preprocess(matrix)
        plan = pipeline.plan_for(schedule, balanced)
        plan.validate()
        assert plan.nnz == 0
        np.testing.assert_array_equal(plan.execute(np.ones(5)), np.zeros(7))


class TestReplay:
    def test_bit_identical_to_scatter_path(self, square_matrix, rng):
        plan_pipe = GustPipeline(32)
        s, b, _ = plan_pipe.preprocess(square_matrix)
        for _ in range(3):
            x = rng.normal(size=square_matrix.shape[1])
            y_plan = plan_pipe.execute(s, b, x)
            y_scatter = plan_pipe.execute_scatter(s, b, x)
            np.testing.assert_array_equal(y_plan, y_scatter)
            np.testing.assert_allclose(y_plan, square_matrix.matvec(x))

    def test_legacy_backend_selects_scatter(self, square_matrix, rng):
        pipeline = GustPipeline(32, backend="legacy-scatter")
        s, b, _ = pipeline.preprocess(square_matrix)
        x = rng.normal(size=square_matrix.shape[1])
        np.testing.assert_array_equal(
            pipeline.execute(s, b, x), pipeline.execute_scatter(s, b, x)
        )

    def test_compiled_matvec_binds_once(self, prepared, rng):
        pipeline, schedule, balanced = prepared
        apply_a = pipeline.compile_schedule(schedule, balanced).matvec
        x = rng.normal(size=schedule.shape[1])
        np.testing.assert_array_equal(
            apply_a(x), pipeline.execute(schedule, balanced, x)
        )

    def test_memo_hit_skips_plan_lookup(self, prepared, rng, monkeypatch):
        """Steady-state executes resolve the compiled handle by identity:
        after the first call, plan_for must not run again."""
        pipeline, schedule, balanced = prepared
        x = rng.normal(size=schedule.shape[1])
        pipeline.execute(schedule, balanced, x)  # compile + memoize
        calls = []
        original = GustPipeline.plan_for

        def counting(self, *args, **kwargs):
            calls.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(GustPipeline, "plan_for", counting)
        for _ in range(3):
            pipeline.execute(schedule, balanced, x)
        assert calls == []

    def test_memo_respects_balanced_argument(self, square_matrix, rng):
        """A schedule executed against a *different* BalancedMatrix must
        not reuse the memoized plan's row permutation."""
        from repro.core.load_balance import identity_balance

        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        x = rng.normal(size=square_matrix.shape[1])
        pipeline.execute(schedule, balanced, x)  # memoize against balanced
        other = identity_balance(balanced.matrix, 32)
        np.testing.assert_array_equal(
            pipeline.execute(schedule, other, x),
            pipeline.execute_scatter(schedule, other, x),
        )
        # And the original pairing still serves the original plan.
        np.testing.assert_array_equal(
            pipeline.execute(schedule, balanced, x),
            pipeline.execute_scatter(schedule, balanced, x),
        )

    def test_rectangular_and_unbalanced(self, rng):
        matrix = uniform_random(50, 130, 0.07, seed=21)
        for load_balance in (True, False):
            pipeline = GustPipeline(16, load_balance=load_balance)
            s, b, _ = pipeline.preprocess(matrix)
            x = rng.normal(size=130)
            np.testing.assert_array_equal(
                pipeline.execute(s, b, x), pipeline.execute_scatter(s, b, x)
            )

    def test_wrong_vector_shape(self, prepared):
        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        with pytest.raises(HardwareConfigError, match="incompatible"):
            plan.execute(np.zeros(schedule.shape[1] + 1))

    def test_block_matches_per_column_execute(self, prepared, rng):
        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        dense = rng.normal(size=(schedule.shape[1], 6))
        block = plan.execute_block(dense)
        expected = np.column_stack(
            [plan.execute(dense[:, j]) for j in range(6)]
        )
        np.testing.assert_allclose(block, expected)

    def test_block_wrong_shape(self, prepared):
        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        with pytest.raises(HardwareConfigError, match="dense operand"):
            plan.execute_block(np.zeros((3, 3)))

    def test_block_zero_columns(self, prepared):
        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        out = plan.execute_block(np.zeros((schedule.shape[1], 0)))
        assert out.shape == (schedule.shape[0], 0)


class TestRefresh:
    def test_with_values_matches_cold_compile(self, square_matrix, rng):
        cache_pipe = GustPipeline(32, cache=True)
        s, b, _ = cache_pipe.preprocess(square_matrix)
        updated = square_matrix.with_data(
            rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        )
        s2, b2, report = cache_pipe.preprocess(updated)
        assert report.notes["cache_refresh"] == 1.0
        x = rng.normal(size=square_matrix.shape[1])
        y_refreshed = cache_pipe.execute(s2, b2, x)
        cold = GustPipeline(32)
        s3, b3, _ = cold.preprocess(updated)
        np.testing.assert_array_equal(y_refreshed, cold.execute(s3, b3, x))

    def test_with_values_rejects_pattern_change(self, prepared):
        pipeline, schedule, balanced = prepared
        pipeline_cache = GustPipeline(32, cache=True)
        s, b, _ = pipeline_cache.preprocess(
            uniform_random(96, 96, 0.06, seed=11)
        )
        plan = pipeline_cache.plan_for(s, b)
        if plan.value_source is None:
            pytest.skip("cache did not attach value sources")
        with pytest.raises(ScheduleError, match="pattern changed"):
            plan.with_values(np.zeros(plan.nnz + 3))

    def test_cache_hit_reuses_plan_object(self, square_matrix):
        pipeline = GustPipeline(32, cache=True)
        s1, b1, _ = pipeline.preprocess(square_matrix)
        plan_first = pipeline.plan_for(s1, b1)
        s2, b2, report = pipeline.preprocess(square_matrix)
        assert report.notes["cache_hit"] == 1.0
        assert pipeline.plan_for(s2, b2) is plan_first


class TestSpmmTiles:
    def test_plan_block_tile_one_budget(self, prepared, rng):
        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        dense = rng.normal(size=(schedule.shape[1], 5))
        tiled = plan.execute_block(dense, tile_budget=1)
        untiled = plan.execute_block(dense, tile_budget=DEFAULT_TILE_BUDGET)
        np.testing.assert_array_equal(tiled, untiled)

    def test_plan_and_scatter_spmm_agree(self, square_matrix, rng):
        dense = rng.normal(size=(square_matrix.shape[1], 9))
        with_plan = GustSpmm(32).spmm(square_matrix, dense)
        without = GustSpmm(32, backend="legacy-scatter").spmm(
            square_matrix, dense
        )
        np.testing.assert_allclose(with_plan.y, without.y)


class TestScratchBuffer:
    """The reusable per-plan product buffer must never change results."""

    def test_repeated_replays_bit_identical_to_scatter(
        self, prepared, rng
    ):
        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        for _ in range(5):
            x = rng.normal(size=schedule.shape[1])
            expected = pipeline.execute_scatter(schedule, balanced, x)
            # Twice with the same x: the second call reuses a dirty
            # buffer and must still be bit-identical.
            assert (plan.execute(x) == expected).all()
            assert (plan.execute(x) == expected).all()

    def test_scratch_allocated_once_per_thread(self, prepared, rng):
        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        plan.execute(rng.normal(size=schedule.shape[1]))
        first = plan._scratch.products
        plan.execute(rng.normal(size=schedule.shape[1]))
        assert plan._scratch.products is first

    def test_concurrent_replay_from_many_threads(self, prepared, rng):
        """Thread-local scratch: concurrent replays never corrupt."""
        import threading

        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        xs = rng.normal(size=(8, schedule.shape[1]))
        expected = [
            pipeline.execute_scatter(schedule, balanced, x) for x in xs
        ]
        mismatches = []
        lock = threading.Lock()

        def worker(j: int) -> None:
            for _ in range(20):
                if not (plan.execute(xs[j]) == expected[j]).all():
                    with lock:
                        mismatches.append(j)

        threads = [
            threading.Thread(target=worker, args=(j,)) for j in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert mismatches == []

    def test_value_refresh_gets_fresh_scratch(self, square_matrix, rng):
        pipeline = GustPipeline(32, cache=True)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        plan = pipeline.plan_for(schedule, balanced)
        plan.execute(rng.normal(size=square_matrix.shape[1]))
        refreshed = plan.with_values(plan.values[plan.slot_order.argsort()]
                                     if plan.slot_order is not None
                                     else plan.values)
        assert not hasattr(refreshed._scratch, "products")


class TestCsrLayout:
    def test_layout_is_consistent_and_cached(self, prepared):
        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        indptr, cols, vals, order = plan.csr_layout()
        assert indptr.shape == (schedule.shape[0] + 1,)
        assert indptr[0] == 0 and indptr[-1] == plan.nnz
        assert (np.diff(indptr) >= 0).all()
        counts = np.bincount(order, minlength=plan.nnz)
        assert counts.max() == counts.min() == 1  # a permutation
        assert (vals == plan.values[order]).all()
        assert plan.csr_layout()[0] is indptr  # memoized

    def test_layout_matvec_matches_execute(self, prepared, rng):
        """A sequential walk of the CSR layout equals plan.execute."""
        pipeline, schedule, balanced = prepared
        plan = pipeline.plan_for(schedule, balanced)
        indptr, cols, vals, _ = plan.csr_layout()
        x = rng.normal(size=schedule.shape[1])
        m = schedule.shape[0]
        y = np.zeros(m)
        for i in range(m):
            acc = 0.0
            for jj in range(indptr[i], indptr[i + 1]):
                acc += vals[jj] * x[cols[jj]]
            y[i] = acc
        assert np.allclose(y, plan.execute(x))

    def test_empty_plan_layout(self):
        matrix = CooMatrix.empty((6, 4))
        pipeline = GustPipeline(4)
        schedule, balanced, _ = pipeline.preprocess(matrix)
        plan = pipeline.plan_for(schedule, balanced)
        indptr, cols, vals, order = plan.csr_layout()
        assert indptr.tolist() == [0] * 7
        assert cols.size == vals.size == order.size == 0


class TestScipyOracle:
    """Cross-check the replay stack against scipy.sparse CSR matvec.

    The ROADMAP's "natural next backend" note: the plan's sorted CSR
    segment layout is exactly what a scipy CSR matvec consumes, so scipy
    — where available — is an independent oracle for every replay path.
    Skipped cleanly when scipy is absent.
    """

    sparse = pytest.importorskip("scipy.sparse")

    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_plan_replay_matches_scipy(self, seed, rng):
        matrix = uniform_random(120, 90, 0.07, seed=seed)
        pipeline = GustPipeline(16)
        schedule, balanced, _ = pipeline.preprocess(matrix)
        plan = pipeline.plan_for(schedule, balanced)
        oracle = self.sparse.coo_matrix(
            (matrix.data, (matrix.rows, matrix.cols)), shape=matrix.shape
        ).tocsr()
        for _ in range(3):
            x = rng.normal(size=matrix.shape[1])
            expected = oracle @ x
            np.testing.assert_allclose(plan.execute(x), expected)
            np.testing.assert_allclose(
                pipeline.execute_scatter(schedule, balanced, x), expected
            )

    def test_plan_spmm_matches_scipy(self, square_matrix, rng):
        pipeline = GustPipeline(32)
        schedule, balanced, _ = pipeline.preprocess(square_matrix)
        plan = pipeline.plan_for(schedule, balanced)
        dense = rng.normal(size=(square_matrix.shape[1], 7))
        oracle = self.sparse.coo_matrix(
            (
                square_matrix.data,
                (square_matrix.rows, square_matrix.cols),
            ),
            shape=square_matrix.shape,
        ).tocsr()
        np.testing.assert_allclose(plan.execute_block(dense), oracle @ dense)
