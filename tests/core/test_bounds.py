"""Tests for the statistical bound formulas (Section 3.4)."""

import math

import pytest

from repro.core.bounds import (
    clt_applicable,
    expected_colors,
    expected_execution_cycles,
    expected_utilization,
)
from repro.errors import HardwareConfigError


class TestFormulas:
    def test_expected_colors_value(self):
        # Eq. 9: N p + sqrt(2 N p (1-p) ln(2l)) computed by hand.
        n, p, length = 1000, 0.01, 64
        sigma = math.sqrt(n * p * (1 - p))
        expected = n * p + sigma * math.sqrt(2 * math.log(2 * length))
        assert expected_colors(n, p, length) == pytest.approx(expected)

    def test_expected_cycles_value(self):
        n, p, length = 1024, 0.02, 128
        expected = (n / length) * expected_colors(n, p, length) + 2
        assert expected_execution_cycles(n, p, length) == pytest.approx(expected)

    def test_utilization_closed_form(self):
        n, p, length = 4096, 0.01, 256
        denominator = 1 + math.sqrt(2 * (1 - p) * math.log(2 * length) / (n * p))
        assert expected_utilization(n, p, length) == pytest.approx(
            1 / denominator
        )

    def test_dense_limit(self):
        # p -> 1 drives utilization to 1.
        assert expected_utilization(1000, 1.0, 64) == pytest.approx(1.0)


class TestMonotonicity:
    def test_utilization_increases_with_density(self):
        values = [
            expected_utilization(4096, p, 256)
            for p in (0.001, 0.01, 0.05, 0.2)
        ]
        assert values == sorted(values)

    def test_utilization_increases_with_dimension(self):
        values = [
            expected_utilization(n, 0.01, 256) for n in (512, 2048, 8192)
        ]
        assert values == sorted(values)

    def test_utilization_decreases_with_length(self):
        values = [
            expected_utilization(4096, 0.01, length)
            for length in (32, 128, 512)
        ]
        assert values == sorted(values, reverse=True)

    def test_colors_grow_with_density(self):
        assert expected_colors(4096, 0.02, 256) > expected_colors(
            4096, 0.01, 256
        )


class TestApplicability:
    def test_clt_condition(self):
        # N > 9 (1-p)/p
        assert clt_applicable(1000, 0.01)  # 9 * 99 = 891 < 1000
        assert not clt_applicable(800, 0.01)
        assert not clt_applicable(100, 0.0)


class TestValidation:
    def test_bad_arguments(self):
        with pytest.raises(HardwareConfigError):
            expected_colors(0, 0.1, 8)
        with pytest.raises(HardwareConfigError):
            expected_colors(10, 0.0, 8)
        with pytest.raises(HardwareConfigError):
            expected_colors(10, 1.5, 8)
        with pytest.raises(HardwareConfigError):
            expected_execution_cycles(10, 0.1, 0)
