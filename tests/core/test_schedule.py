"""Tests for the Schedule container and its validation."""

import numpy as np
import pytest

from repro import GustScheduler, uniform_random
from repro.core.schedule import EMPTY, PIPELINE_FILL_CYCLES, Schedule
from repro.errors import ScheduleError


@pytest.fixture
def schedule(square_matrix):
    return GustScheduler(32, validate=True).schedule(square_matrix)


class TestSizes:
    def test_totals(self, schedule, square_matrix):
        assert schedule.total_colors == sum(schedule.window_colors)
        assert schedule.nnz == square_matrix.nnz
        assert schedule.window_count == 3
        assert (
            schedule.execution_cycles
            == schedule.total_colors + PIPELINE_FILL_CYCLES
        )

    def test_empty_schedule(self):
        from repro import CooMatrix

        empty = GustScheduler(8).schedule(CooMatrix.empty((4, 4)))
        assert empty.execution_cycles == 0
        assert empty.utilization == 0.0

    def test_utilization_formula(self, schedule):
        expected = schedule.nnz / (schedule.length * schedule.execution_cycles)
        assert schedule.utilization == pytest.approx(expected)

    def test_occupancy_bounds(self, schedule):
        assert 0 < schedule.occupancy <= 1

    def test_window_offsets(self, schedule):
        offsets = schedule.window_offsets()
        assert offsets[0] == 0
        np.testing.assert_array_equal(
            np.diff(offsets), np.asarray(schedule.window_colors[:-1])
        )

    def test_window_of_timestep(self, schedule):
        owners = schedule.window_of_timestep()
        assert owners.shape == (schedule.total_colors,)
        counts = np.bincount(owners, minlength=schedule.window_count)
        assert counts.tolist() == list(schedule.window_colors)


class TestValidation:
    def _clone(self, schedule, **overrides):
        fields = {
            "length": schedule.length,
            "shape": schedule.shape,
            "m_sch": schedule.m_sch.copy(),
            "row_sch": schedule.row_sch.copy(),
            "col_sch": schedule.col_sch.copy(),
            "window_colors": schedule.window_colors,
        }
        fields.update(overrides)
        return Schedule(**fields)

    def test_valid_passes(self, schedule):
        schedule.validate()

    def test_shape_mismatch(self, schedule):
        bad = self._clone(schedule, m_sch=schedule.m_sch[:-1].copy())
        with pytest.raises(ScheduleError, match="shape"):
            bad.validate()

    def test_window_colors_mismatch(self, schedule):
        bad = self._clone(
            schedule,
            window_colors=schedule.window_colors[:-1]
            + (schedule.window_colors[-1] + 1,),
        )
        with pytest.raises(ScheduleError, match="window_colors"):
            bad.validate()

    def test_occupancy_disagreement(self, schedule):
        row_sch = schedule.row_sch.copy()
        step, lane = np.argwhere(row_sch != EMPTY)[0]
        col_sch = schedule.col_sch.copy()
        col_sch[step, lane] = EMPTY
        bad = self._clone(schedule, col_sch=col_sch)
        with pytest.raises(ScheduleError, match="disagree"):
            bad.validate()

    def test_value_in_empty_slot(self, schedule):
        m_sch = schedule.m_sch.copy()
        step, lane = np.argwhere(schedule.row_sch == EMPTY)[0]
        m_sch[step, lane] = 1.0
        bad = self._clone(schedule, m_sch=m_sch)
        with pytest.raises(ScheduleError, match="empty slot"):
            bad.validate()

    def test_collision_detected(self, schedule):
        row_sch = schedule.row_sch.copy()
        # Find a timestep with two occupied lanes and alias their adders.
        for step in range(schedule.total_colors):
            lanes = np.nonzero(row_sch[step] != EMPTY)[0]
            if lanes.size >= 2:
                row_sch[step, lanes[1]] = row_sch[step, lanes[0]]
                break
        bad = self._clone(schedule, row_sch=row_sch)
        with pytest.raises(ScheduleError, match="collision"):
            bad.validate()

    def test_destination_out_of_range(self, schedule):
        row_sch = schedule.row_sch.copy()
        step, lane = np.argwhere(row_sch != EMPTY)[0]
        row_sch[step, lane] = schedule.length + 5
        bad = self._clone(schedule, row_sch=row_sch)
        with pytest.raises(ScheduleError, match="out of range"):
            bad.validate()

    def test_column_out_of_range(self, schedule):
        col_sch = schedule.col_sch.copy()
        step, lane = np.argwhere(col_sch != EMPTY)[0]
        col_sch[step, lane] = schedule.shape[1] + 7
        bad = self._clone(schedule, col_sch=col_sch)
        with pytest.raises(ScheduleError, match="out of range"):
            bad.validate()
