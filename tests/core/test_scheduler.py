"""Tests for the GUST scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CooMatrix, GustScheduler, LoadBalancer, uniform_random
from repro.core.load_balance import identity_balance
from repro.errors import ColoringError
from tests.strategies import coo_matrices

ALGORITHMS = ("matching", "first_fit", "euler", "naive")


class TestScheduling:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_nonzeros_scheduled(self, square_matrix, algorithm):
        scheduler = GustScheduler(32, algorithm=algorithm, validate=True)
        schedule = scheduler.schedule(square_matrix)
        assert schedule.nnz == square_matrix.nnz

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_schedule_content_matches_matrix(self, small_matrix, algorithm):
        scheduler = GustScheduler(16, algorithm=algorithm, validate=True)
        schedule = scheduler.schedule(small_matrix)
        from repro.core.schedule import EMPTY

        occupied = schedule.row_sch != EMPTY
        steps, lanes = np.nonzero(occupied)
        owners = schedule.window_of_timestep()
        rows = owners[steps] * 16 + schedule.row_sch[steps, lanes]
        cols = schedule.col_sch[steps, lanes]
        values = schedule.m_sch[steps, lanes]
        rebuilt = CooMatrix.from_arrays(rows, cols, values, small_matrix.shape)
        assert rebuilt == small_matrix

    def test_color_counts_matches_schedule(self, square_matrix):
        scheduler = GustScheduler(32)
        balanced = identity_balance(square_matrix, 32)
        counts = scheduler.color_counts(balanced)
        schedule = scheduler.schedule_balanced(balanced)
        assert tuple(counts) == schedule.window_colors

    def test_balanced_scheduling_valid(self, square_matrix):
        balanced = LoadBalancer(32).balance(square_matrix)
        schedule = GustScheduler(32, validate=True).schedule_balanced(balanced)
        assert schedule.nnz == square_matrix.nnz

    def test_length_larger_than_matrix(self, small_matrix):
        scheduler = GustScheduler(128, validate=True)
        schedule = scheduler.schedule(small_matrix)
        assert schedule.window_count == 1

    def test_unknown_algorithm(self):
        with pytest.raises(ColoringError, match="unknown"):
            GustScheduler(8, algorithm="psychic")

    def test_stalls_only_for_naive(self, square_matrix):
        naive = GustScheduler(32, algorithm="naive")
        naive.schedule(square_matrix)
        assert naive.last_stalls > 0
        colored = GustScheduler(32, algorithm="matching")
        colored.schedule(square_matrix)
        assert colored.last_stalls == 0

    @given(coo_matrices(max_dim=40))
    @settings(max_examples=30, deadline=None)
    def test_any_matrix_schedules_validly(self, matrix):
        scheduler = GustScheduler(8, validate=True)
        schedule = scheduler.schedule(matrix)
        assert schedule.nnz == matrix.nnz


class TestValueReuse:
    def test_reschedule_values(self, square_matrix, rng):
        scheduler = GustScheduler(32, validate=True)
        balanced = identity_balance(square_matrix, 32)
        schedule = scheduler.schedule_balanced(balanced)

        new_values = rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        updated_matrix = square_matrix.with_data(new_values)
        updated = scheduler.reschedule_values(
            schedule, identity_balance(updated_matrix, 32)
        )
        # Same structure, new values, still numerically exact.
        assert updated.window_colors == schedule.window_colors
        np.testing.assert_array_equal(updated.row_sch, schedule.row_sch)
        x = rng.normal(size=square_matrix.shape[1])
        from repro import GustPipeline

        pipeline = GustPipeline(32, load_balance=False)
        y = pipeline.execute(updated, identity_balance(updated_matrix, 32), x)
        np.testing.assert_allclose(y, updated_matrix.matvec(x))

    def test_reschedule_rejects_pattern_change(self, square_matrix):
        scheduler = GustScheduler(32)
        balanced = identity_balance(square_matrix, 32)
        schedule = scheduler.schedule_balanced(balanced)
        # Drop one entry: the pattern no longer matches the schedule.
        smaller = CooMatrix.from_arrays(
            square_matrix.rows[1:],
            square_matrix.cols[1:],
            square_matrix.data[1:],
            square_matrix.shape,
        )
        with pytest.raises(ColoringError, match="pattern"):
            scheduler.reschedule_values(
                schedule, identity_balance(smaller, 32)
            )

    def test_reschedule_rejects_extra_nonzeros(self, square_matrix):
        """Regression: a matrix with *extra* entries used to be silently
        accepted (the old lookup only caught missing ones)."""
        scheduler = GustScheduler(32)
        schedule = scheduler.schedule_balanced(
            identity_balance(square_matrix, 32)
        )
        free = np.argwhere(
            ~np.isin(
                np.arange(square_matrix.shape[0] * square_matrix.shape[1]),
                square_matrix.rows * square_matrix.shape[1] + square_matrix.cols,
            )
        ).ravel()[0]
        extra_row, extra_col = divmod(int(free), square_matrix.shape[1])
        bigger = CooMatrix.from_arrays(
            np.append(square_matrix.rows, extra_row),
            np.append(square_matrix.cols, extra_col),
            np.append(square_matrix.data, 1.5),
            square_matrix.shape,
        )
        with pytest.raises(ColoringError, match="pattern changed"):
            scheduler.reschedule_values(
                schedule, identity_balance(bigger, 32)
            )

    def test_reschedule_rejects_swapped_entry_same_nnz(self, square_matrix):
        """Same nonzero count but one entry moved: caught by the key join."""
        scheduler = GustScheduler(32)
        schedule = scheduler.schedule_balanced(
            identity_balance(square_matrix, 32)
        )
        n = square_matrix.shape[1]
        occupied = set(
            (int(r), int(c))
            for r, c in zip(square_matrix.rows, square_matrix.cols)
        )
        move_to = next(
            (r, c)
            for r in range(square_matrix.shape[0])
            for c in range(n)
            if (r, c) not in occupied
        )
        rows = square_matrix.rows.copy()
        cols = square_matrix.cols.copy()
        rows[0], cols[0] = move_to
        moved = CooMatrix.from_arrays(
            rows, cols, square_matrix.data, square_matrix.shape
        )
        with pytest.raises(ColoringError, match="pattern"):
            scheduler.reschedule_values(schedule, identity_balance(moved, 32))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_reschedule_matches_from_scratch(self, square_matrix, rng, algorithm):
        """Value refresh must equal a cold schedule of the updated matrix."""
        scheduler = GustScheduler(32, algorithm=algorithm)
        balanced = identity_balance(square_matrix, 32)
        schedule = scheduler.schedule_balanced(balanced)

        updated = square_matrix.with_data(
            rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        )
        refreshed = scheduler.reschedule_values(
            schedule, identity_balance(updated, 32)
        )
        cold = GustScheduler(32, algorithm=algorithm).schedule_balanced(
            identity_balance(updated, 32)
        )
        assert refreshed.window_colors == cold.window_colors
        np.testing.assert_array_equal(refreshed.row_sch, cold.row_sch)
        np.testing.assert_array_equal(refreshed.col_sch, cold.col_sch)
        np.testing.assert_array_equal(refreshed.m_sch, cold.m_sch)

    @pytest.mark.parametrize("algorithm", ("matching", "first_fit", "euler"))
    def test_reschedule_matches_from_scratch_balanced(
        self, square_matrix, rng, algorithm
    ):
        """Same invariant through the load-balanced (EC/LB) path."""
        balancer = LoadBalancer(32)
        scheduler = GustScheduler(32, algorithm=algorithm)
        schedule = scheduler.schedule_balanced(balancer.balance(square_matrix))

        updated = square_matrix.with_data(
            rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        )
        refreshed = scheduler.reschedule_values(
            schedule, balancer.balance(updated)
        )
        cold = GustScheduler(32, algorithm=algorithm).schedule_balanced(
            balancer.balance(updated)
        )
        np.testing.assert_array_equal(refreshed.m_sch, cold.m_sch)
        np.testing.assert_array_equal(refreshed.row_sch, cold.row_sch)


class TestProcessPoolScheduling:
    """jobs > 1 must be a pure throughput knob: byte-identical schedules."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_jobs_byte_identical(self, square_matrix, algorithm):
        serial_scheduler = GustScheduler(16, algorithm=algorithm)
        serial = serial_scheduler.schedule(square_matrix)
        pooled_scheduler = GustScheduler(16, algorithm=algorithm, jobs=2)
        pooled = pooled_scheduler.schedule(square_matrix)
        assert pooled.window_colors == serial.window_colors
        np.testing.assert_array_equal(pooled.m_sch, serial.m_sch)
        np.testing.assert_array_equal(pooled.row_sch, serial.row_sch)
        np.testing.assert_array_equal(pooled.col_sch, serial.col_sch)
        assert pooled_scheduler.last_stalls == serial_scheduler.last_stalls

    def test_jobs_exceeding_windows_clamped(self, small_matrix):
        serial = GustScheduler(16, algorithm="euler").schedule(small_matrix)
        pooled = GustScheduler(16, algorithm="euler", jobs=64).schedule(
            small_matrix
        )
        np.testing.assert_array_equal(pooled.m_sch, serial.m_sch)
        np.testing.assert_array_equal(pooled.row_sch, serial.row_sch)
        np.testing.assert_array_equal(pooled.col_sch, serial.col_sch)

    def test_jobs_with_balanced_partition(self, square_matrix):
        balancer = LoadBalancer(16)
        balanced = balancer.balance(square_matrix)
        serial = GustScheduler(16, algorithm="matching").schedule_balanced(
            balanced
        )
        pooled = GustScheduler(
            16, algorithm="matching", jobs=3
        ).schedule_balanced(balanced)
        assert pooled.window_colors == serial.window_colors
        np.testing.assert_array_equal(pooled.m_sch, serial.m_sch)
        np.testing.assert_array_equal(pooled.row_sch, serial.row_sch)
        np.testing.assert_array_equal(pooled.col_sch, serial.col_sch)

    def test_empty_matrix_skips_pool(self):
        empty = CooMatrix.from_arrays(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.float64),
            (32, 32),
        )
        schedule = GustScheduler(16, jobs=4).schedule(empty)
        assert schedule.nnz == 0

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ColoringError, match="jobs"):
            GustScheduler(16, jobs=0)
        with pytest.raises(ColoringError, match="jobs"):
            GustScheduler(16, jobs=-2)


class TestPoolFaultTolerance:
    """A killed pool worker degrades to serial re-dispatch, byte-identical."""

    def test_broken_pool_recovers_byte_identical(self, square_matrix):
        from repro.faults import FaultPlan

        serial = GustScheduler(16, algorithm="euler").schedule(square_matrix)
        survivor = GustScheduler(
            16,
            algorithm="euler",
            jobs=2,
            faults=FaultPlan(counts={"pool-kill": 1}),
        )
        recovered = survivor.schedule(square_matrix)
        assert recovered.window_colors == serial.window_colors
        np.testing.assert_array_equal(recovered.m_sch, serial.m_sch)
        np.testing.assert_array_equal(recovered.row_sch, serial.row_sch)
        np.testing.assert_array_equal(recovered.col_sch, serial.col_sch)

    def test_broken_pool_recovers_balanced_partition(self, square_matrix):
        from repro.faults import FaultPlan

        balancer = LoadBalancer(16)
        balanced = balancer.balance(square_matrix)
        serial = GustScheduler(16, algorithm="matching").schedule_balanced(
            balanced
        )
        recovered = GustScheduler(
            16,
            algorithm="matching",
            jobs=2,
            faults=FaultPlan(counts={"pool-kill": 1}),
        ).schedule_balanced(balanced)
        assert recovered.window_colors == serial.window_colors
        np.testing.assert_array_equal(recovered.m_sch, serial.m_sch)
        np.testing.assert_array_equal(recovered.row_sch, serial.row_sch)
        np.testing.assert_array_equal(recovered.col_sch, serial.col_sch)
