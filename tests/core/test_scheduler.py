"""Tests for the GUST scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CooMatrix, GustScheduler, LoadBalancer, uniform_random
from repro.core.load_balance import identity_balance
from repro.errors import ColoringError
from tests.strategies import coo_matrices

ALGORITHMS = ("matching", "first_fit", "euler", "naive")


class TestScheduling:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_nonzeros_scheduled(self, square_matrix, algorithm):
        scheduler = GustScheduler(32, algorithm=algorithm, validate=True)
        schedule = scheduler.schedule(square_matrix)
        assert schedule.nnz == square_matrix.nnz

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_schedule_content_matches_matrix(self, small_matrix, algorithm):
        scheduler = GustScheduler(16, algorithm=algorithm, validate=True)
        schedule = scheduler.schedule(small_matrix)
        from repro.core.schedule import EMPTY

        occupied = schedule.row_sch != EMPTY
        steps, lanes = np.nonzero(occupied)
        owners = schedule.window_of_timestep()
        rows = owners[steps] * 16 + schedule.row_sch[steps, lanes]
        cols = schedule.col_sch[steps, lanes]
        values = schedule.m_sch[steps, lanes]
        rebuilt = CooMatrix.from_arrays(rows, cols, values, small_matrix.shape)
        assert rebuilt == small_matrix

    def test_color_counts_matches_schedule(self, square_matrix):
        scheduler = GustScheduler(32)
        balanced = identity_balance(square_matrix, 32)
        counts = scheduler.color_counts(balanced)
        schedule = scheduler.schedule_balanced(balanced)
        assert tuple(counts) == schedule.window_colors

    def test_balanced_scheduling_valid(self, square_matrix):
        balanced = LoadBalancer(32).balance(square_matrix)
        schedule = GustScheduler(32, validate=True).schedule_balanced(balanced)
        assert schedule.nnz == square_matrix.nnz

    def test_length_larger_than_matrix(self, small_matrix):
        scheduler = GustScheduler(128, validate=True)
        schedule = scheduler.schedule(small_matrix)
        assert schedule.window_count == 1

    def test_unknown_algorithm(self):
        with pytest.raises(ColoringError, match="unknown"):
            GustScheduler(8, algorithm="psychic")

    def test_stalls_only_for_naive(self, square_matrix):
        naive = GustScheduler(32, algorithm="naive")
        naive.schedule(square_matrix)
        assert naive.last_stalls > 0
        colored = GustScheduler(32, algorithm="matching")
        colored.schedule(square_matrix)
        assert colored.last_stalls == 0

    @given(coo_matrices(max_dim=40))
    @settings(max_examples=30, deadline=None)
    def test_any_matrix_schedules_validly(self, matrix):
        scheduler = GustScheduler(8, validate=True)
        schedule = scheduler.schedule(matrix)
        assert schedule.nnz == matrix.nnz


class TestValueReuse:
    def test_reschedule_values(self, square_matrix, rng):
        scheduler = GustScheduler(32, validate=True)
        balanced = identity_balance(square_matrix, 32)
        schedule = scheduler.schedule_balanced(balanced)

        new_values = rng.uniform(1.0, 2.0, size=square_matrix.nnz)
        updated_matrix = square_matrix.with_data(new_values)
        updated = scheduler.reschedule_values(
            schedule, identity_balance(updated_matrix, 32)
        )
        # Same structure, new values, still numerically exact.
        assert updated.window_colors == schedule.window_colors
        np.testing.assert_array_equal(updated.row_sch, schedule.row_sch)
        x = rng.normal(size=square_matrix.shape[1])
        from repro import GustPipeline

        pipeline = GustPipeline(32, load_balance=False)
        y = pipeline.execute(updated, identity_balance(updated_matrix, 32), x)
        np.testing.assert_allclose(y, updated_matrix.matvec(x))

    def test_reschedule_rejects_pattern_change(self, square_matrix):
        scheduler = GustScheduler(32)
        balanced = identity_balance(square_matrix, 32)
        schedule = scheduler.schedule_balanced(balanced)
        # Drop one entry: the pattern no longer matches the schedule.
        smaller = CooMatrix.from_arrays(
            square_matrix.rows[1:],
            square_matrix.cols[1:],
            square_matrix.data[1:],
            square_matrix.shape,
        )
        with pytest.raises(ColoringError, match="pattern"):
            scheduler.reschedule_values(
                schedule, identity_balance(smaller, 32)
            )
