"""Tracer: nesting, ring bound, clocking, ambient activation, export."""

import json
import threading

import pytest

from repro.obs import trace
from repro.obs.trace import NULL_SPAN, Tracer


def fake_clock(values):
    """A deterministic clock yielding the given instants in order."""
    iterator = iter(values)
    return lambda: next(iterator)


class TestSpans:
    def test_span_records_name_timing_and_args(self):
        tracer = Tracer(clock=fake_clock([0.0, 1.0, 3.5]))
        with tracer.span("work", cat="test", k=7):
            pass
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["ph"] == "X"
        assert event["ts_s"] == pytest.approx(1.0)
        assert event["dur_s"] == pytest.approx(2.5)
        assert event["args"] == {"k": 7}

    def test_nesting_tracked_via_thread_local_stack(self):
        tracer = Tracer(clock=fake_clock([0.0] + [float(i) for i in range(8)]))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()
        assert (inner["name"], inner["depth"]) == ("inner", 1)
        assert (outer["name"], outer["depth"]) == ("outer", 0)

    def test_exception_annotates_and_propagates(self):
        tracer = Tracer(clock=fake_clock([0.0, 1.0, 2.0]))
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (event,) = tracer.events()
        assert event["args"]["error"] == "ValueError"

    def test_annotate_mid_span(self):
        tracer = Tracer(clock=fake_clock([0.0, 1.0, 2.0]))
        with tracer.span("work") as span:
            span.annotate(rows=128)
        assert tracer.events()[0]["args"] == {"rows": 128}

    def test_instant_event(self):
        tracer = Tracer(clock=fake_clock([0.0, 1.0]))
        tracer.instant("enqueue", tenant="A")
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["dur_s"] == 0.0

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        depths = {}

        def worker(name):
            with tracer.span(name):
                depths[name] = len(tracer._local.stack)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(depths.values()) == {1}
        assert len(tracer.events()) == 3


class TestRingBuffer:
    def test_retention_is_bounded_oldest_dropped(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 4
        assert tracer.dropped == 6
        names = [event["name"] for event in tracer.events()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_clear_resets(self):
        tracer = Tracer(capacity=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestDisabledPath:
    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        with tracer.span("anything"):
            pass
        tracer.instant("nothing")
        assert len(tracer) == 0

    def test_module_span_is_null_when_no_ambient(self, monkeypatch):
        monkeypatch.delenv(trace.ENV_TRACE, raising=False)
        assert trace.span("x") is NULL_SPAN

    def test_installed_disabled_tracer_forces_off(self, monkeypatch):
        monkeypatch.setenv(trace.ENV_TRACE, "1")
        with trace.overridden(Tracer(enabled=False)):
            assert trace.active_tracer() is None
            assert trace.span("x") is NULL_SPAN


class TestAmbient:
    def test_env_activates_and_caches_one_tracer(self, monkeypatch):
        monkeypatch.setenv(trace.ENV_TRACE, "1")
        first = trace.active_tracer()
        assert first is not None and first.enabled
        assert trace.active_tracer() is first
        monkeypatch.delenv(trace.ENV_TRACE)
        assert trace.active_tracer() is None

    @pytest.mark.parametrize("value", ["0", "false", "off", "", "no"])
    def test_falsy_env_values_stay_off(self, monkeypatch, value):
        monkeypatch.setenv(trace.ENV_TRACE, value)
        assert trace.active_tracer() is None

    def test_overridden_restores_previous(self):
        mine = Tracer()
        with trace.overridden(mine):
            assert trace.active_tracer() is mine
            with mine.span("inside"):
                pass
        assert len(mine) == 1

    def test_module_span_records_into_ambient(self):
        tracer = Tracer()
        with trace.overridden(tracer):
            with trace.span("ambient-span"):
                pass
            trace.instant("ambient-instant")
        names = [event["name"] for event in tracer.events()]
        assert names == ["ambient-span", "ambient-instant"]


class TestChromeExport:
    def test_chrome_trace_structure(self):
        tracer = Tracer(clock=fake_clock([0.0, 0.5, 1.5]))
        with tracer.span("compile.partition", cat="compile", windows=3):
            pass
        trace_json = tracer.chrome_trace()
        assert trace_json["displayTimeUnit"] == "ms"
        (event,) = trace_json["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(1.0e6)
        assert {"pid", "tid"} <= set(event)
        assert event["args"] == {"windows": 3}

    def test_non_json_args_are_repred(self):
        tracer = Tracer(clock=fake_clock([0.0, 0.0, 1.0]))
        with tracer.span("s", payload=object()):
            pass
        args = tracer.chrome_trace()["traceEvents"][0]["args"]
        assert isinstance(args["payload"], str)

    def test_export_writes_loadable_json(self, tmp_path):
        tracer = Tracer(clock=fake_clock([0.0, 0.0, 1.0]))
        with tracer.span("s"):
            pass
        out = tmp_path / "trace.json"
        count = tracer.export(out)
        assert count == 1
        loaded = json.loads(out.read_text())
        assert loaded["traceEvents"][0]["name"] == "s"
