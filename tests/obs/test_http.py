"""MetricsExporter: ephemeral-port HTTP serving of one registry."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.http import PROMETHEUS_CONTENT_TYPE, MetricsExporter
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def exporter():
    registry = MetricsRegistry()
    registry.counter("gust_demo_total", help="demo").inc(5, kind="smoke")
    with MetricsExporter(registry, port=0) as running:
        yield running


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestEndpoints:
    def test_port_zero_binds_ephemeral(self, exporter):
        assert exporter.port != 0
        assert str(exporter.port) in exporter.url

    def test_metrics_serves_prometheus_text(self, exporter):
        status, headers, body = _get(exporter.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode()
        assert 'gust_demo_total{kind="smoke"} 5' in text
        assert "# TYPE gust_demo_total counter" in text

    def test_metrics_json_parses(self, exporter):
        status, headers, body = _get(exporter.url + "/metrics.json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["gust_demo_total"]["samples"][0]["value"] == 5.0

    def test_healthz(self, exporter):
        status, _, body = _get(exporter.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0.0

    def test_unknown_path_404(self, exporter):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(exporter.url + "/nope")
        assert excinfo.value.code == 404


class TestLifecycle:
    def test_start_is_idempotent(self):
        exporter = MetricsExporter(MetricsRegistry(), port=0)
        try:
            exporter.start()
            port = exporter.port
            assert exporter.start() is exporter
            assert exporter.port == port
        finally:
            exporter.stop()

    def test_stop_releases_and_refuses_connections(self):
        exporter = MetricsExporter(MetricsRegistry(), port=0).start()
        url = exporter.url + "/healthz"
        _get(url)
        exporter.stop()
        with pytest.raises(urllib.error.URLError):
            _get(url)

    def test_stop_without_start_is_noop(self):
        MetricsExporter(MetricsRegistry()).stop()
