"""MetricsRegistry: families, labels, golden Prometheus output, JSON."""

import pytest

from repro.errors import ReproError
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounters:
    def test_inc_and_value_with_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("gust_events_total")
        counter.inc(tier="memory")
        counter.inc(2.0, tier="memory")
        counter.inc(tier="disk")
        assert counter.value(tier="memory") == 3.0
        assert counter.value(tier="disk") == 1.0
        assert counter.value(tier="unseen") == 0.0

    def test_counter_cannot_decrease(self):
        counter = MetricsRegistry().counter("gust_x_total")
        with pytest.raises(ReproError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_set_total_overwrites_for_snapshot_bridges(self):
        counter = MetricsRegistry().counter("gust_x_total")
        counter.set_total(41.0)
        counter.set_total(42.0)
        assert counter.value() == 42.0

    def test_registration_is_idempotent_but_type_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("gust_x_total", help="x")
        assert registry.counter("gust_x_total") is first
        with pytest.raises(ReproError, match="already registered"):
            registry.gauge("gust_x_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ReproError, match="invalid metric label"):
            registry.counter("gust_ok_total").inc(**{"bad-label": "v"})


class TestHistograms:
    def test_observations_land_in_first_covering_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("gust_s", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(55.55)
        assert snapshot["buckets"][0.1] == 1
        assert snapshot["buckets"][1.0] == 2
        assert snapshot["buckets"][10.0] == 3
        assert snapshot["buckets"][float("inf")] == 4

    def test_bucket_counts_are_monotonic_in_rendered_output(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("gust_s", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 0.5, 2.0, 0.001):
            histogram.observe(value)
        rendered = registry.render_prometheus()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in rendered.splitlines()
            if line.startswith("gust_s_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 6  # +Inf equals _count

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_malformed_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError, match="strictly increasing"):
            registry.histogram("gust_bad", buckets=(1.0, 1.0, 2.0))

    def test_bucket_mismatch_on_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("gust_s", buckets=(1.0, 2.0))
        with pytest.raises(ReproError, match="different buckets"):
            registry.histogram("gust_s", buckets=(1.0, 3.0))


class TestPrometheusExposition:
    def test_golden_output_stable_order_and_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("gust_b_total", help="b counter")
        counter.inc(3, tenant='evil"name\\with\nstuff')
        gauge = registry.gauge("gust_a_state", help="a gauge")
        gauge.set(2.0, tenant="zeta")
        gauge.set(1.0, tenant="alpha")
        expected = (
            "# HELP gust_a_state a gauge\n"
            "# TYPE gust_a_state gauge\n"
            'gust_a_state{tenant="alpha"} 1\n'
            'gust_a_state{tenant="zeta"} 2\n'
            "# HELP gust_b_total b counter\n"
            "# TYPE gust_b_total counter\n"
            'gust_b_total{tenant="evil\\"name\\\\with\\nstuff"} 3\n'
        )
        assert registry.render_prometheus() == expected

    def test_histogram_exposition_shape(self):
        registry = MetricsRegistry()
        registry.histogram(
            "gust_s", help="h", buckets=(0.5, 1.5)
        ).observe(1.0, phase="color")
        expected = (
            "# HELP gust_s h\n"
            "# TYPE gust_s histogram\n"
            'gust_s_bucket{phase="color",le="0.5"} 0\n'
            'gust_s_bucket{phase="color",le="1.5"} 1\n'
            'gust_s_bucket{phase="color",le="+Inf"} 1\n'
            'gust_s_sum{phase="color"} 1\n'
            'gust_s_count{phase="color"} 1\n'
        )
        assert registry.render_prometheus() == expected

    def test_empty_family_still_renders_type_line(self):
        registry = MetricsRegistry()
        registry.counter("gust_quiet_total", help="never incremented")
        rendered = registry.render_prometheus()
        assert "# TYPE gust_quiet_total counter" in rendered

    def test_rendering_is_deterministic(self):
        registry = MetricsRegistry()
        for tenant in ("b", "a", "c"):
            registry.counter("gust_x_total").inc(tenant=tenant)
        assert (
            registry.render_prometheus() == registry.render_prometheus()
        )


class TestJsonAndCollectors:
    def test_to_json_roundtrip_shape(self):
        registry = MetricsRegistry()
        registry.counter("gust_x_total", help="x").inc(2, kind="k")
        registry.histogram("gust_h", buckets=(1.0,)).observe(0.5)
        payload = registry.to_json()
        assert payload["gust_x_total"]["type"] == "counter"
        assert payload["gust_x_total"]["samples"] == [
            {"labels": {"kind": "k"}, "value": 2.0}
        ]
        assert payload["gust_h"]["samples"][0]["count"] == 1

    def test_collectors_run_before_exposition(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("gust_live_state")
        state = {"value": 0.0}
        registry.register_collector(
            lambda: gauge.set(state["value"])
        )
        state["value"] = 7.0
        assert "gust_live_state 7" in registry.render_prometheus()
        state["value"] = 9.0
        assert "gust_live_state 9" in registry.render_prometheus()

    def test_raising_collector_is_counted_not_fatal(self):
        registry = MetricsRegistry()

        def bad_collector():
            raise RuntimeError("wobble")

        registry.register_collector(bad_collector)
        rendered = registry.render_prometheus()
        assert "gust_obs_collector_errors_total 1" in rendered

    def test_reset_drops_samples_keeps_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("gust_x_total")
        counter.inc()
        registry.reset()
        assert counter.value() == 0.0
        assert registry.counter("gust_x_total") is counter


def test_gauge_reuses_counter_rendering():
    gauge = MetricsRegistry().gauge("gust_g")
    assert gauge.render() == []
    gauge.set(1.5)
    assert gauge.render() == ["gust_g 1.5"]
