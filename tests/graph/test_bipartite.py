"""Tests for the window bipartite multigraph."""

import numpy as np
import pytest

from repro import CooMatrix
from repro.errors import HardwareConfigError
from repro.graph.bipartite import WindowGraph


def _window(rows, cols, shape):
    return CooMatrix.from_arrays(
        np.asarray(rows), np.asarray(cols), np.ones(len(rows)), shape
    )


class TestFromWindow:
    def test_basic_mapping(self):
        window = _window([0, 0, 1], [0, 5, 2], (2, 8))
        graph = WindowGraph.from_window(window, length=4)
        assert graph.edge_count == 3
        assert graph.colsegs.tolist() == [0, 1, 2]  # 0%4, 5%4, 2%4
        assert graph.cols.tolist() == [0, 5, 2]

    def test_rejects_oversized_window(self):
        window = _window([0, 4], [0, 0], (5, 4))
        with pytest.raises(HardwareConfigError, match="exceeding"):
            WindowGraph.from_window(window, length=4)

    def test_rejects_bad_length(self):
        window = _window([0], [0], (1, 1))
        with pytest.raises(HardwareConfigError, match="positive"):
            WindowGraph.from_window(window, length=0)


class TestDegrees:
    def test_degrees_and_max(self):
        # Rows 0 and 1; columns 0 and 4 share segment 0 for length 4.
        window = _window([0, 0, 1], [0, 4, 0], (2, 8))
        graph = WindowGraph.from_window(window, length=4)
        assert graph.left_degrees().tolist() == [2, 1, 0, 0]
        assert graph.right_degrees().tolist() == [3, 0, 0, 0]
        assert graph.max_degree() == 3

    def test_empty_graph(self):
        graph = WindowGraph.from_window(CooMatrix.empty((2, 8)), length=4)
        assert graph.max_degree() == 0
        assert graph.edge_count == 0


class TestEdgesByRow:
    def test_grouping_preserves_column_order(self):
        window = _window([0, 0, 1, 1], [3, 1, 2, 0], (2, 4))
        graph = WindowGraph.from_window(window, length=2)
        groups = graph.edges_by_row()
        # Canonical COO sorts by (row, col): row 0 -> cols 1,3; row 1 -> 0,2.
        assert [graph.cols[e] for e in groups[0]] == [1, 3]
        assert [graph.cols[e] for e in groups[1]] == [0, 2]

    def test_group_count_equals_length(self):
        window = _window([0], [0], (1, 4))
        graph = WindowGraph.from_window(window, length=8)
        assert len(graph.edges_by_row()) == 8
