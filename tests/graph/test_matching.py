"""Tests for bipartite matching algorithms."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.matching import (
    greedy_maximal_matching,
    hopcroft_karp,
    hopcroft_karp_flat,
)


def _random_adjacency(n_left, n_right, density, seed):
    rng = np.random.default_rng(seed)
    return [
        [v for v in range(n_right) if rng.random() < density]
        for _ in range(n_left)
    ]


class TestHopcroftKarp:
    def test_perfect_matching_on_cycle(self):
        adjacency = [[0, 1], [1, 2], [2, 0]]
        _, _, size = hopcroft_karp(adjacency, 3, 3)
        assert size == 3

    def test_star_graph(self):
        adjacency = [[0], [0], [0]]
        match_left, match_right, size = hopcroft_karp(adjacency, 3, 1)
        assert size == 1
        assert (match_left != -1).sum() == 1
        assert match_right[0] != -1

    def test_empty_graph(self):
        _, _, size = hopcroft_karp([[], []], 2, 2)
        assert size == 0

    def test_duplicate_edges_harmless(self):
        adjacency = [[0, 0, 0], [1, 1]]
        _, _, size = hopcroft_karp(adjacency, 2, 2)
        assert size == 2

    def test_matching_consistency(self):
        adjacency = _random_adjacency(20, 20, 0.2, seed=1)
        match_left, match_right, size = hopcroft_karp(adjacency, 20, 20)
        matched = 0
        for u in range(20):
            v = match_left[u]
            if v != -1:
                assert match_right[v] == u
                assert v in adjacency[u]
                matched += 1
        assert matched == size

    @given(
        st.integers(min_value=1, max_value=14),
        st.integers(min_value=1, max_value=14),
        st.floats(min_value=0.0, max_value=0.6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_maximum_size_matches_networkx(self, n_left, n_right, density, seed):
        adjacency = _random_adjacency(n_left, n_right, density, seed)
        _, _, size = hopcroft_karp(adjacency, n_left, n_right)
        graph = nx.Graph()
        graph.add_nodes_from((f"L{u}" for u in range(n_left)), bipartite=0)
        graph.add_nodes_from((f"R{v}" for v in range(n_right)), bipartite=1)
        for u, neighbours in enumerate(adjacency):
            for v in neighbours:
                graph.add_edge(f"L{u}", f"R{v}")
        reference = nx.bipartite.maximum_matching(
            graph, top_nodes=[f"L{u}" for u in range(n_left)]
        )
        assert size == len(reference) // 2


class TestGreedyMatching:
    def test_takes_first_available(self):
        adjacency = [[0, 1], [0, 1]]
        matching = greedy_maximal_matching(adjacency, 2, 2)
        assert matching == [(0, 0), (1, 1)]

    def test_maximality(self):
        adjacency = _random_adjacency(15, 15, 0.3, seed=2)
        matching = greedy_maximal_matching(adjacency, 15, 15)
        matched_left = {u for u, _ in matching}
        matched_right = {v for _, v in matching}
        # No remaining edge connects two unmatched vertices.
        for u, neighbours in enumerate(adjacency):
            if u in matched_left:
                continue
            assert all(v in matched_right for v in neighbours)


def _to_csr(adjacency):
    indptr = np.zeros(len(adjacency) + 1, dtype=np.int64)
    np.cumsum([len(row) for row in adjacency], out=indptr[1:])
    indices = np.array(
        [v for row in adjacency for v in row] or [], dtype=np.int64
    )
    return indptr, indices


def _greedy_seed(adjacency, n_left, n_right):
    """The matching the unseeded first phase builds: ascending left order,
    first free right neighbour in adjacency order."""
    ml = np.full(n_left, -1, dtype=np.int64)
    mr = np.full(n_right, -1, dtype=np.int64)
    size = 0
    for u, row in enumerate(adjacency):
        for v in row:
            if mr[v] == -1:
                ml[u] = v
                mr[v] = u
                size += 1
                break
    return ml, mr, size


class TestHopcroftKarpFlat:
    """The CSR kernel must reproduce the adjacency-list reference exactly —
    vertex for vertex, not just in matching size."""

    @given(
        st.integers(min_value=1, max_value=18),
        st.integers(min_value=1, max_value=18),
        st.floats(min_value=0.0, max_value=0.6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_to_adjacency_list_reference(
        self, n_left, n_right, density, seed
    ):
        adjacency = _random_adjacency(n_left, n_right, density, seed=seed)
        indptr, indices = _to_csr(adjacency)
        ref_l, ref_r, ref_size = hopcroft_karp(adjacency, n_left, n_right)
        flat_l, flat_r, flat_size = hopcroft_karp_flat(
            indptr, indices, n_left, n_right
        )
        assert flat_size == ref_size
        np.testing.assert_array_equal(flat_l, ref_l)
        np.testing.assert_array_equal(flat_r, ref_r)

    @given(
        st.integers(min_value=1, max_value=14),
        st.floats(min_value=0.0, max_value=0.6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_greedy_seed_changes_nothing(self, n, density, seed):
        """Seeding with the first phase's own greedy matching must yield
        the exact matching of an unseeded run — that equivalence is what
        lets the euler coloring vectorize phase one."""
        adjacency = _random_adjacency(n, n, density, seed=seed)
        indptr, indices = _to_csr(adjacency)
        plain = hopcroft_karp_flat(indptr, indices, n, n)
        ml, mr, size = _greedy_seed(adjacency, n, n)
        seeded = hopcroft_karp_flat(
            indptr, indices, n, n, seed_left=ml, seed_right=mr, seed_size=size
        )
        assert seeded[2] == plain[2]
        np.testing.assert_array_equal(seeded[0], plain[0])
        np.testing.assert_array_equal(seeded[1], plain[1])

    def test_disjoint_union_equals_per_component_runs(self):
        """Grouped components (window w owns ids [w*l, (w+1)*l)) must match
        exactly as if each component ran alone — the property the flat
        euler kernel builds on."""
        rng = np.random.default_rng(7)
        length = 6
        components = [
            _random_adjacency(length, length, density, seed=int(s))
            for s, density in zip(rng.integers(0, 999, size=5), (0.1, 0.4, 0.0, 0.9, 0.25))
        ]
        union = [
            [base + v for v in row]
            for w, comp in enumerate(components)
            for base, row in (((w * length), r) for r in comp)
        ]
        n = length * len(components)
        indptr, indices = _to_csr(union)
        flat_l, flat_r, flat_size = hopcroft_karp_flat(indptr, indices, n, n)
        total = 0
        for w, comp in enumerate(components):
            iptr, idx = _to_csr(comp)
            part_l, part_r, part_size = hopcroft_karp_flat(
                iptr, idx, length, length
            )
            total += part_size
            lo = w * length
            expect_l = np.where(part_l != -1, part_l + lo, -1)
            expect_r = np.where(part_r != -1, part_r + lo, -1)
            np.testing.assert_array_equal(flat_l[lo:lo + length], expect_l)
            np.testing.assert_array_equal(flat_r[lo:lo + length], expect_r)
        assert flat_size == total

    def test_narrow_dtype_preserved(self):
        """int32 CSR input must run end to end without silent upcasts
        breaking the searchsorted/gather paths."""
        adjacency = _random_adjacency(12, 12, 0.3, seed=3)
        indptr, indices = _to_csr(adjacency)
        flat32 = hopcroft_karp_flat(
            indptr.astype(np.int32), indices.astype(np.int32), 12, 12
        )
        flat64 = hopcroft_karp_flat(indptr, indices, 12, 12)
        assert flat32[2] == flat64[2]
        np.testing.assert_array_equal(flat32[0], flat64[0])
        np.testing.assert_array_equal(flat32[1], flat64[1])

    def test_empty_graph(self):
        indptr = np.zeros(4, dtype=np.int64)
        indices = np.array([], dtype=np.int64)
        ml, mr, size = hopcroft_karp_flat(indptr, indices, 3, 3)
        assert size == 0
        assert (ml == -1).all() and (mr == -1).all()
