"""Tests for bipartite matching algorithms."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.matching import greedy_maximal_matching, hopcroft_karp


def _random_adjacency(n_left, n_right, density, seed):
    rng = np.random.default_rng(seed)
    return [
        [v for v in range(n_right) if rng.random() < density]
        for _ in range(n_left)
    ]


class TestHopcroftKarp:
    def test_perfect_matching_on_cycle(self):
        adjacency = [[0, 1], [1, 2], [2, 0]]
        _, _, size = hopcroft_karp(adjacency, 3, 3)
        assert size == 3

    def test_star_graph(self):
        adjacency = [[0], [0], [0]]
        match_left, match_right, size = hopcroft_karp(adjacency, 3, 1)
        assert size == 1
        assert (match_left != -1).sum() == 1
        assert match_right[0] != -1

    def test_empty_graph(self):
        _, _, size = hopcroft_karp([[], []], 2, 2)
        assert size == 0

    def test_duplicate_edges_harmless(self):
        adjacency = [[0, 0, 0], [1, 1]]
        _, _, size = hopcroft_karp(adjacency, 2, 2)
        assert size == 2

    def test_matching_consistency(self):
        adjacency = _random_adjacency(20, 20, 0.2, seed=1)
        match_left, match_right, size = hopcroft_karp(adjacency, 20, 20)
        matched = 0
        for u in range(20):
            v = match_left[u]
            if v != -1:
                assert match_right[v] == u
                assert v in adjacency[u]
                matched += 1
        assert matched == size

    @given(
        st.integers(min_value=1, max_value=14),
        st.integers(min_value=1, max_value=14),
        st.floats(min_value=0.0, max_value=0.6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_maximum_size_matches_networkx(self, n_left, n_right, density, seed):
        adjacency = _random_adjacency(n_left, n_right, density, seed)
        _, _, size = hopcroft_karp(adjacency, n_left, n_right)
        graph = nx.Graph()
        graph.add_nodes_from((f"L{u}" for u in range(n_left)), bipartite=0)
        graph.add_nodes_from((f"R{v}" for v in range(n_right)), bipartite=1)
        for u, neighbours in enumerate(adjacency):
            for v in neighbours:
                graph.add_edge(f"L{u}", f"R{v}")
        reference = nx.bipartite.maximum_matching(
            graph, top_nodes=[f"L{u}" for u in range(n_left)]
        )
        assert size == len(reference) // 2


class TestGreedyMatching:
    def test_takes_first_available(self):
        adjacency = [[0, 1], [0, 1]]
        matching = greedy_maximal_matching(adjacency, 2, 2)
        assert matching == [(0, 0), (1, 1)]

    def test_maximality(self):
        adjacency = _random_adjacency(15, 15, 0.3, seed=2)
        matching = greedy_maximal_matching(adjacency, 15, 15)
        matched_left = {u for u, _ in matching}
        matched_right = {v for _, v in matching}
        # No remaining edge connects two unmatched vertices.
        for u, neighbours in enumerate(adjacency):
            if u in matched_left:
                continue
            assert all(v in matched_right for v in neighbours)
