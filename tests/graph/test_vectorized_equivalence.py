"""The vectorized coloring kernels must reproduce the seed implementations.

The frozen pure-Python originals live in :mod:`repro.graph._reference`.
The NumPy batch kernels are required to be *edge-for-edge* identical on
every window (which implies bit-identical color counts), and the flat
multi-window entry points must agree with coloring each window separately.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CooMatrix, GustScheduler, LoadBalancer, uniform_random
from repro.core.load_balance import identity_balance
from repro.errors import ColoringError
from repro.graph._reference import (
    REFERENCE_ALGORITHMS,
    reference_color_counts,
    reference_window_colorings,
    reference_window_graphs,
)
from repro.graph.bipartite import WindowGraph
from repro.graph.edge_coloring import (
    color_edges,
    euler_coloring,
    first_fit_coloring,
    greedy_matching_coloring,
)
from repro.graph.properties import validate_coloring
from tests.strategies import coo_matrices, window_graphs

VECTORIZED = {
    "matching": greedy_matching_coloring,
    "first_fit": first_fit_coloring,
    "euler": euler_coloring,
}


def _random_suite():
    rng = np.random.default_rng(2024)
    cases = []
    for seed in range(12):
        m = int(rng.integers(1, 200))
        n = int(rng.integers(1, 200))
        density = float(rng.uniform(0.0, 0.25))
        length = int(rng.integers(1, 24))
        cases.append((uniform_random(m, n, density, seed=seed), length))
    return cases


class TestPerWindowEquivalence:
    @pytest.mark.parametrize("name", sorted(VECTORIZED))
    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_seed(self, name, graph):
        seed_colors = REFERENCE_ALGORITHMS[name](graph)
        new_colors = VECTORIZED[name](graph)
        np.testing.assert_array_equal(new_colors, seed_colors)

    @pytest.mark.parametrize("name", sorted(VECTORIZED))
    @given(graph=window_graphs())
    @settings(max_examples=40, deadline=None)
    def test_vectorized_coloring_is_proper(self, name, graph):
        validate_coloring(graph, VECTORIZED[name](graph))


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("name", sorted(VECTORIZED))
    @pytest.mark.parametrize("balance", ["identity", "balanced"])
    def test_randomized_matrices_match_seed(self, name, balance):
        for matrix, length in _random_suite():
            balanced = (
                identity_balance(matrix, length)
                if balance == "identity"
                else LoadBalancer(length).balance(matrix)
            )
            scheduler = GustScheduler(length, algorithm=name)
            counts = scheduler.color_counts(balanced)
            assert counts == reference_color_counts(balanced, length, name)

            # Edge-for-edge: the flat kernel output sliced per window must
            # equal the seed's per-window colorings.
            partition = scheduler._partition(balanced)
            flat = scheduler._color_flat(balanced, partition)
            per_window = reference_window_colorings(balanced, length, name)
            starts = partition.window_starts
            for w, seed_colors in enumerate(per_window):
                np.testing.assert_array_equal(
                    flat[starts[w] : starts[w + 1]], seed_colors
                )

    @pytest.mark.parametrize("name", sorted(VECTORIZED))
    @given(matrix=coo_matrices(max_dim=40))
    @settings(max_examples=25, deadline=None)
    def test_property_counts_match_seed(self, name, matrix):
        balanced = identity_balance(matrix, 8)
        counts = GustScheduler(8, algorithm=name).color_counts(balanced)
        assert counts == reference_color_counts(balanced, 8, name)

    def test_schedules_match_seed_windows(self):
        matrix = uniform_random(96, 96, density=0.08, seed=5)
        balanced = LoadBalancer(16).balance(matrix)
        schedule = GustScheduler(16, algorithm="matching").schedule_balanced(
            balanced
        )
        graphs = reference_window_graphs(balanced, 16)
        seed_counts = tuple(
            int(c.max()) + 1 if c.size else 0
            for c in reference_window_colorings(balanced, 16, "matching")
        )
        assert schedule.window_colors == seed_counts
        assert len(graphs) == schedule.window_count


class TestFirstFitMemoryFallback:
    def test_per_window_fallback_is_identical(self, monkeypatch):
        """Under a tiny table budget first_fit colors window by window;
        the result must be bit-identical to the batched tables."""
        from repro.graph import edge_coloring

        matrix = uniform_random(120, 90, density=0.15, seed=21)
        balanced = identity_balance(matrix, 16)
        scheduler = GustScheduler(16, algorithm="first_fit")
        batched = scheduler.schedule_balanced(balanced)
        monkeypatch.setattr(edge_coloring, "_FIRST_FIT_TABLE_BUDGET", 1)
        fallback = scheduler.schedule_balanced(balanced)
        assert fallback.window_colors == batched.window_colors
        np.testing.assert_array_equal(fallback.row_sch, batched.row_sch)
        np.testing.assert_array_equal(fallback.m_sch, batched.m_sch)


class TestUncoloredConvention:
    def _empty_graph(self):
        return WindowGraph(
            length=4,
            local_rows=np.zeros(0, np.int64),
            colsegs=np.zeros(0, np.int64),
            cols=np.zeros(0, np.int64),
            values=np.zeros(0),
        )

    def test_first_fit_zero_edges_matches_convention(self):
        """Regression: first_fit used to return an uninitialized np.empty."""
        colors = first_fit_coloring(self._empty_graph())
        assert colors.dtype == np.int64
        assert colors.size == 0
        # Same construction path as the other algorithms: a -1-filled array.
        reference = np.full(0, -1, dtype=np.int64)
        np.testing.assert_array_equal(colors, reference)

    def test_color_edges_rejects_incomplete_coloring(self, monkeypatch):
        from repro.graph import edge_coloring

        graph = WindowGraph(
            length=2,
            local_rows=np.array([0], dtype=np.int64),
            colsegs=np.array([1], dtype=np.int64),
            cols=np.array([1], dtype=np.int64),
            values=np.ones(1),
        )
        monkeypatch.setitem(
            edge_coloring.ALGORITHMS,
            "broken",
            lambda g: np.full(g.edge_count, -1, dtype=np.int64),
        )
        with pytest.raises(ColoringError, match="uncolored"):
            color_edges(graph, "broken")

    def test_color_edges_rejects_wrong_shape(self, monkeypatch):
        from repro.graph import edge_coloring

        graph = WindowGraph(
            length=2,
            local_rows=np.array([0, 1], dtype=np.int64),
            colsegs=np.array([0, 1], dtype=np.int64),
            cols=np.array([0, 1], dtype=np.int64),
            values=np.ones(2),
        )
        monkeypatch.setitem(
            edge_coloring.ALGORITHMS,
            "truncated",
            lambda g: np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(ColoringError, match="colors"):
            color_edges(graph, "truncated")
