"""Tests for the three edge-coloring algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import ColoringError
from repro.graph.edge_coloring import (
    color_edges,
    euler_coloring,
    first_fit_coloring,
    greedy_matching_coloring,
)
from repro.graph.properties import color_count, validate_coloring
from tests.strategies import window_graphs

ALGORITHMS = {
    "matching": greedy_matching_coloring,
    "first_fit": first_fit_coloring,
    "euler": euler_coloring,
}


class TestAllAlgorithms:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_empty_graph(self, name):
        from repro.graph.bipartite import WindowGraph

        graph = WindowGraph(
            length=4,
            local_rows=np.zeros(0, np.int64),
            colsegs=np.zeros(0, np.int64),
            cols=np.zeros(0, np.int64),
            values=np.zeros(0),
        )
        colors = ALGORITHMS[name](graph)
        assert colors.size == 0

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @given(graph=window_graphs())
    @settings(max_examples=50, deadline=None)
    def test_proper_coloring(self, name, graph):
        colors = ALGORITHMS[name](graph)
        validate_coloring(graph, colors)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @given(graph=window_graphs())
    @settings(max_examples=50, deadline=None)
    def test_color_bounds(self, name, graph):
        colors = ALGORITHMS[name](graph)
        used = color_count(colors)
        delta = graph.max_degree()
        assert used >= delta  # cannot beat the degree bound
        if name == "euler":
            assert used == delta  # König optimum, exactly
        else:
            assert used <= max(0, 2 * delta - 1)  # greedy guarantee

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @given(graph=window_graphs())
    @settings(max_examples=20, deadline=None)
    def test_deterministic(self, name, graph):
        first = ALGORITHMS[name](graph)
        second = ALGORITHMS[name](graph)
        np.testing.assert_array_equal(first, second)


class TestGreedyMatchingSemantics:
    def test_round_structure(self):
        """Each round is a maximal matching in left-vertex order."""
        from repro.graph.bipartite import WindowGraph

        # Rows 0 and 1 both want segment 0 first; row 0 wins round 0.
        graph = WindowGraph(
            length=2,
            local_rows=np.array([0, 1], dtype=np.int64),
            colsegs=np.array([0, 0], dtype=np.int64),
            cols=np.array([0, 0], dtype=np.int64),
            values=np.ones(2),
        )
        colors = greedy_matching_coloring(graph)
        assert colors.tolist() == [0, 1]

    def test_second_edge_in_round(self):
        # Row 1's first edge collides with row 0's, but its second edge is
        # free in the same round — Listing 1 takes it (the break happens
        # after coloring one edge).
        from repro.graph.bipartite import WindowGraph

        graph = WindowGraph(
            length=2,
            local_rows=np.array([0, 1, 1], dtype=np.int64),
            colsegs=np.array([0, 0, 1], dtype=np.int64),
            cols=np.array([0, 0, 1], dtype=np.int64),
            values=np.ones(3),
        )
        colors = greedy_matching_coloring(graph)
        assert colors[0] == 0  # row 0 seg 0, round 0
        assert colors[2] == 0  # row 1 seg 1, round 0
        assert colors[1] == 1  # row 1 seg 0 deferred to round 1


class TestDispatch:
    def test_color_edges_dispatch(self):
        from repro.graph.bipartite import WindowGraph

        graph = WindowGraph(
            length=2,
            local_rows=np.array([0], dtype=np.int64),
            colsegs=np.array([1], dtype=np.int64),
            cols=np.array([1], dtype=np.int64),
            values=np.ones(1),
        )
        for name in ALGORITHMS:
            validate_coloring(graph, color_edges(graph, name))

    def test_unknown_algorithm(self):
        from repro.graph.bipartite import WindowGraph

        graph = WindowGraph(
            length=2,
            local_rows=np.zeros(0, np.int64),
            colsegs=np.zeros(0, np.int64),
            cols=np.zeros(0, np.int64),
            values=np.zeros(0),
        )
        with pytest.raises(ColoringError, match="unknown"):
            color_edges(graph, "rainbow")
