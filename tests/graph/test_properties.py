"""Tests for coloring validation."""

import numpy as np
import pytest

from repro.errors import ColoringError
from repro.graph.bipartite import WindowGraph
from repro.graph.properties import (
    color_count,
    max_bipartite_degree,
    validate_coloring,
)


def _graph(rows, segs, length=4):
    rows = np.asarray(rows, dtype=np.int64)
    segs = np.asarray(segs, dtype=np.int64)
    return WindowGraph(
        length=length,
        local_rows=rows,
        colsegs=segs,
        cols=segs.copy(),
        values=np.ones(rows.size),
    )


class TestValidate:
    def test_accepts_proper(self):
        graph = _graph([0, 0, 1], [0, 1, 0])
        validate_coloring(graph, np.array([0, 1, 1]))

    def test_rejects_row_clash(self):
        graph = _graph([0, 0], [0, 1])
        with pytest.raises(ColoringError, match="row"):
            validate_coloring(graph, np.array([0, 0]))

    def test_rejects_segment_clash(self):
        graph = _graph([0, 1], [2, 2])
        with pytest.raises(ColoringError, match="column segment"):
            validate_coloring(graph, np.array([0, 0]))

    def test_rejects_uncolored(self):
        graph = _graph([0], [0])
        with pytest.raises(ColoringError, match="uncolored"):
            validate_coloring(graph, np.array([-1]))

    def test_rejects_wrong_shape(self):
        graph = _graph([0], [0])
        with pytest.raises(ColoringError, match="shape"):
            validate_coloring(graph, np.array([0, 1]))

    def test_empty_ok(self):
        graph = _graph([], [])
        validate_coloring(graph, np.zeros(0, dtype=np.int64))


class TestMeasures:
    def test_color_count(self):
        assert color_count(np.array([0, 3, 1])) == 4
        assert color_count(np.zeros(0, dtype=np.int64)) == 0

    def test_max_degree(self):
        graph = _graph([0, 0, 1], [0, 1, 0])
        assert max_bipartite_degree(graph) == 2
