"""Property-based contracts for every edge-coloring engine.

Random window multigraphs (``tests/strategies.window_graphs``) drive all
three engines through the invariants the scheduler's correctness rests on:

* **properness/completeness** — no two edges sharing a row (adder) or a
  column segment (multiplier) take one color, and no edge is left
  uncolored: exactly Section 3.3's collision-freedom condition;
* **palette bounds** — every engine needs at least Delta colors (Eq. 1);
  "euler" attains Delta exactly (König's theorem), while the greedy
  engines stay within the classic first-fit bound 2*Delta - 1 (bipartite
  multigraphs sit on the Vizing/Shannon boundary, so the optimum itself is
  Delta — the greedy bound is what the paper trades for speed);
* **oracle agreement** — each engine reproduces the frozen seed
  implementation in :mod:`repro.graph._reference` edge for edge, so any
  behavioral drift in a future optimization is caught at the color level,
  not just the count level.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.load_balance import identity_balance
from repro.core.naive import naive_coloring_flat, naive_stalls_flat
from repro.graph._reference import (
    REFERENCE_ALGORITHMS,
    reference_naive_coloring,
    reference_naive_stalls,
    reference_window_graphs,
)
from repro.graph.edge_coloring import (
    _HAS_BITWISE_COUNT,
    ALGORITHMS,
    _first_fit_flat_bitmask,
    color_edges,
    euler_coloring_flat,
    first_fit_coloring_flat,
)
from repro.graph.properties import (
    color_count,
    max_bipartite_degree,
    validate_coloring,
)
from tests.strategies import coo_matrices, window_graphs

ENGINES = sorted(ALGORITHMS)


def _flat_partition(matrix, length):
    """Flat multi-window edge arrays for an identity-balanced matrix."""
    balanced = identity_balance(matrix, length)
    m, _ = matrix.shape
    n_windows = max(1, -(-m // length))
    window_ids = (
        matrix.rows // length
        if matrix.nnz
        else np.zeros(0, dtype=np.int64)
    )
    local_rows = (
        matrix.rows % length if matrix.nnz else np.zeros(0, dtype=np.int64)
    )
    colsegs = balanced.colseg_of_all(window_ids, matrix.cols, length)
    window_starts = np.searchsorted(
        window_ids, np.arange(n_windows + 1, dtype=np.int64)
    )
    return balanced, n_windows, window_ids, window_starts, local_rows, colsegs


def _adversarial_matrix(length=8, giant_edges=160, trailing_windows=6):
    """One giant window, a run of empty windows, and a one-edge straggler.

    The shape the flat kernels are most likely to get wrong: per-window
    state must not bleed across a giant/empty/singleton mix, and empty
    windows must neither consume rounds nor shift serialization ranks.
    """
    rng = np.random.default_rng(99)
    total = length * 32
    flat = rng.choice(total, size=giant_edges, replace=False)
    rows, cols = np.divmod(flat, 32)
    last_row = length * trailing_windows - 1
    rows = np.concatenate([rows, [last_row]])
    cols = np.concatenate([cols, [5]])
    values = np.arange(1.0, rows.size + 1.0)
    from repro import CooMatrix

    return CooMatrix.from_arrays(rows, cols, values, (last_row + 1, 32))


class TestProperness:
    @pytest.mark.parametrize("engine", ENGINES)
    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_coloring_is_proper_and_complete(self, engine, graph):
        colors = color_edges(graph, engine)
        assert colors.shape == (graph.edge_count,)
        assert colors.dtype == np.int64
        validate_coloring(graph, colors)

    @pytest.mark.parametrize("engine", ENGINES)
    @given(graph=window_graphs(max_length=4, max_edges=10))
    @settings(max_examples=40, deadline=None)
    def test_small_graphs_brute_properness(self, engine, graph):
        """Independent re-check without validate_coloring: every (row,
        color) and (seg, color) pair is used at most once."""
        colors = color_edges(graph, engine)
        seen_row, seen_seg = set(), set()
        for row, seg, color in zip(graph.local_rows, graph.colsegs, colors):
            assert color >= 0
            assert (int(row), int(color)) not in seen_row
            assert (int(seg), int(color)) not in seen_seg
            seen_row.add((int(row), int(color)))
            seen_seg.add((int(seg), int(color)))


class TestPaletteBounds:
    @pytest.mark.parametrize("engine", ENGINES)
    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_at_least_delta(self, graph, engine):
        """Eq. (1): no proper coloring can use fewer than Delta colors."""
        colors = color_edges(graph, engine)
        assert color_count(colors) >= max_bipartite_degree(graph)

    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_euler_attains_koenig_optimum(self, graph):
        """König: a bipartite multigraph is Delta-edge-chromatic, and the
        matching-peel construction must attain it exactly."""
        colors = color_edges(graph, "euler")
        assert color_count(colors) == max_bipartite_degree(graph)

    @pytest.mark.parametrize("engine", ["matching", "first_fit"])
    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_greedy_engines_within_two_delta(self, graph, engine):
        """The greedy engines stay within 2*Delta - 1 (first-fit/Shannon
        bound); colors are also trivially capped by the edge count."""
        colors = color_edges(graph, engine)
        delta = max_bipartite_degree(graph)
        bound = max(2 * delta - 1, 0)
        assert color_count(colors) <= min(bound, graph.edge_count)


class TestOracleAgreement:
    @pytest.mark.parametrize("engine", ENGINES)
    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_edge_for_edge_against_frozen_seed(self, engine, graph):
        live = color_edges(graph, engine)
        oracle = REFERENCE_ALGORITHMS[engine](graph)
        np.testing.assert_array_equal(live, oracle)

    def test_every_engine_has_a_frozen_oracle(self):
        assert set(REFERENCE_ALGORITHMS) == set(ALGORITHMS)


class TestFlatNaiveKernel:
    """The multi-window naive kernel against the frozen per-window seed."""

    @given(matrix=coo_matrices(), length=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_oracle_agreement_and_stalls(self, matrix, length):
        balanced, n_windows, window_ids, starts, local_rows, colsegs = (
            _flat_partition(matrix, length)
        )
        flat = naive_coloring_flat(
            local_rows, colsegs, window_ids, length, n_windows
        )
        stalls = naive_stalls_flat(
            flat, colsegs, window_ids, length, n_windows
        )
        graphs = reference_window_graphs(balanced, length)
        expected_stalls = 0
        for graph, lo, hi in zip(graphs, starts[:-1], starts[1:]):
            oracle = reference_naive_coloring(graph)
            np.testing.assert_array_equal(flat[lo:hi], oracle)
            expected_stalls += reference_naive_stalls(graph, oracle)
        assert stalls == expected_stalls

    @given(matrix=coo_matrices(), length=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_properness(self, matrix, length):
        """A naive schedule is a proper coloring: collision-free heads have
        distinct rows, serialized elements occupy private cycles."""
        balanced, n_windows, window_ids, starts, local_rows, colsegs = (
            _flat_partition(matrix, length)
        )
        flat = naive_coloring_flat(
            local_rows, colsegs, window_ids, length, n_windows
        )
        for graph, lo, hi in zip(
            reference_window_graphs(balanced, length), starts[:-1], starts[1:]
        ):
            if graph.edge_count:
                validate_coloring(graph, flat[lo:hi])

    def test_adversarial_giant_plus_empty_windows(self):
        matrix = _adversarial_matrix()
        length = 8
        balanced, n_windows, window_ids, starts, local_rows, colsegs = (
            _flat_partition(matrix, length)
        )
        assert n_windows == 6  # giant, four empty, one single-edge
        flat = naive_coloring_flat(
            local_rows, colsegs, window_ids, length, n_windows
        )
        graphs = reference_window_graphs(balanced, length)
        assert graphs[0].edge_count > 100
        assert [g.edge_count for g in graphs[1:-1]] == [0] * (n_windows - 2)
        assert graphs[-1].edge_count == 1
        for graph, lo, hi in zip(graphs, starts[:-1], starts[1:]):
            np.testing.assert_array_equal(
                flat[lo:hi], reference_naive_coloring(graph)
            )
        # The straggler window's lone edge issues at its own cycle 0.
        assert flat[-1] == 0


class TestFlatEulerKernel:
    """The vectorized euler partition walk across adversarial windows."""

    def test_adversarial_giant_plus_empty_windows(self):
        matrix = _adversarial_matrix()
        length = 8
        balanced, _, _, starts, _, _ = _flat_partition(matrix, length)
        for graph in reference_window_graphs(balanced, length):
            live = color_edges(graph, "euler")
            np.testing.assert_array_equal(
                live, REFERENCE_ALGORITHMS["euler"](graph)
            )
            if graph.edge_count:
                validate_coloring(graph, live)
                assert color_count(live) == max_bipartite_degree(graph)

    def test_flat_multiwindow_matches_per_window_oracle(self):
        """One euler_coloring_flat call across the adversarial partition
        (giant dense window, empty windows, trailing singletons) must equal
        the frozen per-window seed edge-for-edge — the windows regularize
        to very different degrees, so the shared matching passes must peel
        each window's colors without cross-talk."""
        matrix = _adversarial_matrix()
        length = 8
        balanced, n_windows, window_ids, starts, local_rows, colsegs = (
            _flat_partition(matrix, length)
        )
        flat = euler_coloring_flat(
            local_rows, colsegs, window_ids, length, n_windows
        )
        assert flat.size == matrix.nnz
        for graph, lo, hi in zip(
            reference_window_graphs(balanced, length), starts[:-1], starts[1:]
        ):
            np.testing.assert_array_equal(
                flat[lo:hi], REFERENCE_ALGORITHMS["euler"](graph)
            )
            if graph.edge_count:
                assert (
                    color_count(flat[lo:hi]) == max_bipartite_degree(graph)
                )


@pytest.mark.skipif(
    not _HAS_BITWISE_COUNT, reason="np.bitwise_count requires NumPy >= 2.0"
)
class TestBitmaskFirstFit:
    """The uint64 fast path against the boolean-table kernel and the seed."""

    @given(matrix=coo_matrices(), length=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_bitmask_matches_oracle(self, matrix, length):
        _, n_windows, window_ids, starts, local_rows, colsegs = (
            _flat_partition(matrix, length)
        )
        if matrix.nnz == 0:
            return
        bitmask = _first_fit_flat_bitmask(
            local_rows, colsegs, window_ids, length, starts,
            n_windows * length,
        )
        balanced = identity_balance(matrix, length)
        for graph, lo, hi in zip(
            reference_window_graphs(balanced, length), starts[:-1], starts[1:]
        ):
            np.testing.assert_array_equal(
                bitmask[lo:hi], REFERENCE_ALGORITHMS["first_fit"](graph)
            )

    def test_adversarial_giant_plus_empty_windows(self):
        matrix = _adversarial_matrix()
        length = 8
        _, n_windows, window_ids, starts, local_rows, colsegs = (
            _flat_partition(matrix, length)
        )
        via_dispatch = first_fit_coloring_flat(
            local_rows, colsegs, window_ids, length, n_windows, starts
        )
        direct = _first_fit_flat_bitmask(
            local_rows, colsegs, window_ids, length, starts,
            n_windows * length,
        )
        np.testing.assert_array_equal(via_dispatch, direct)

    def test_dense_hub_window_exceeds_bitmask_palette(self):
        """A >64-palette window must take the boolean/bigint path and still
        match the seed edge-for-edge."""
        from repro import uniform_random

        hub = uniform_random(48, 200, 0.55, seed=17)  # row degrees ~110
        length = 48
        balanced, n_windows, window_ids, starts, local_rows, colsegs = (
            _flat_partition(hub, length)
        )
        row_deg = np.bincount(local_rows).max()
        seg_deg = np.bincount(colsegs).max()
        assert row_deg + seg_deg - 1 > 64
        flat = first_fit_coloring_flat(
            local_rows, colsegs, window_ids, length, n_windows, starts
        )
        (graph,) = reference_window_graphs(balanced, length)
        np.testing.assert_array_equal(
            flat, REFERENCE_ALGORITHMS["first_fit"](graph)
        )
