"""Property-based contracts for every edge-coloring engine.

Random window multigraphs (``tests/strategies.window_graphs``) drive all
three engines through the invariants the scheduler's correctness rests on:

* **properness/completeness** — no two edges sharing a row (adder) or a
  column segment (multiplier) take one color, and no edge is left
  uncolored: exactly Section 3.3's collision-freedom condition;
* **palette bounds** — every engine needs at least Delta colors (Eq. 1);
  "euler" attains Delta exactly (König's theorem), while the greedy
  engines stay within the classic first-fit bound 2*Delta - 1 (bipartite
  multigraphs sit on the Vizing/Shannon boundary, so the optimum itself is
  Delta — the greedy bound is what the paper trades for speed);
* **oracle agreement** — each engine reproduces the frozen seed
  implementation in :mod:`repro.graph._reference` edge for edge, so any
  behavioral drift in a future optimization is caught at the color level,
  not just the count level.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph._reference import REFERENCE_ALGORITHMS
from repro.graph.edge_coloring import ALGORITHMS, color_edges
from repro.graph.properties import (
    color_count,
    max_bipartite_degree,
    validate_coloring,
)
from tests.strategies import window_graphs

ENGINES = sorted(ALGORITHMS)


class TestProperness:
    @pytest.mark.parametrize("engine", ENGINES)
    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_coloring_is_proper_and_complete(self, engine, graph):
        colors = color_edges(graph, engine)
        assert colors.shape == (graph.edge_count,)
        assert colors.dtype == np.int64
        validate_coloring(graph, colors)

    @pytest.mark.parametrize("engine", ENGINES)
    @given(graph=window_graphs(max_length=4, max_edges=10))
    @settings(max_examples=40, deadline=None)
    def test_small_graphs_brute_properness(self, engine, graph):
        """Independent re-check without validate_coloring: every (row,
        color) and (seg, color) pair is used at most once."""
        colors = color_edges(graph, engine)
        seen_row, seen_seg = set(), set()
        for row, seg, color in zip(graph.local_rows, graph.colsegs, colors):
            assert color >= 0
            assert (int(row), int(color)) not in seen_row
            assert (int(seg), int(color)) not in seen_seg
            seen_row.add((int(row), int(color)))
            seen_seg.add((int(seg), int(color)))


class TestPaletteBounds:
    @pytest.mark.parametrize("engine", ENGINES)
    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_at_least_delta(self, graph, engine):
        """Eq. (1): no proper coloring can use fewer than Delta colors."""
        colors = color_edges(graph, engine)
        assert color_count(colors) >= max_bipartite_degree(graph)

    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_euler_attains_koenig_optimum(self, graph):
        """König: a bipartite multigraph is Delta-edge-chromatic, and the
        matching-peel construction must attain it exactly."""
        colors = color_edges(graph, "euler")
        assert color_count(colors) == max_bipartite_degree(graph)

    @pytest.mark.parametrize("engine", ["matching", "first_fit"])
    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_greedy_engines_within_two_delta(self, graph, engine):
        """The greedy engines stay within 2*Delta - 1 (first-fit/Shannon
        bound); colors are also trivially capped by the edge count."""
        colors = color_edges(graph, engine)
        delta = max_bipartite_degree(graph)
        bound = max(2 * delta - 1, 0)
        assert color_count(colors) <= min(bound, graph.edge_count)


class TestOracleAgreement:
    @pytest.mark.parametrize("engine", ENGINES)
    @given(graph=window_graphs())
    @settings(max_examples=60, deadline=None)
    def test_edge_for_edge_against_frozen_seed(self, engine, graph):
        live = color_edges(graph, engine)
        oracle = REFERENCE_ALGORITHMS[engine](graph)
        np.testing.assert_array_equal(live, oracle)

    def test_every_engine_has_a_frozen_oracle(self):
        assert set(REFERENCE_ALGORITHMS) == set(ALGORITHMS)
