"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CooMatrix, uniform_random


@pytest.fixture(autouse=True)
def _hermetic_schedule_store(tmp_path, monkeypatch):
    """Point the default persistent schedule store at a per-test temp dir.

    The CLI's disk cache is on by default; without this, tests exercising
    default paths would write artifacts into the developer's real
    ``~/.cache/gust`` and could warm-start from a previous run's state.
    """
    monkeypatch.setenv("GUST_CACHE_DIR", str(tmp_path / "gust-store"))


@pytest.fixture
def no_faults():
    """Pin a test to a fault-free world.

    CI runs one tier-1 leg under ``GUST_FAULTS=store-io:0.2`` to prove
    the compute-fallback paths keep the suite green.  Tests that assert
    *exact* store/cache counters (hits, misses, writes) are about the
    counters, not the fallback — injected IO faults would turn their
    exact assertions into flakes, so they opt out of the ambient plan.

    Uses a private MonkeyPatch instance: the shared ``monkeypatch``
    fixture would let a test's own ``monkeypatch.undo()`` resurrect the
    ambient GUST_FAULTS plan mid-test.
    """
    from repro import faults

    mp = pytest.MonkeyPatch()
    mp.delenv(faults.ENV_SPEC, raising=False)
    mp.delenv(faults.ENV_SEED, raising=False)
    previous = faults.install(None)
    yield
    faults.install(previous)
    mp.undo()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix() -> CooMatrix:
    """A deterministic 40x60 sparse matrix with varied row loads."""
    return uniform_random(40, 60, density=0.08, seed=7)


@pytest.fixture
def square_matrix() -> CooMatrix:
    """A deterministic 96x96 matrix sized to cross window boundaries."""
    return uniform_random(96, 96, density=0.06, seed=11)


@pytest.fixture
def figure5_matrix() -> CooMatrix:
    """The paper's Figure 5 example: 6x9, 26 nonzeros."""
    pattern = {
        0: "ACDEH",
        1: "ABFGH",
        2: "BCDI",
        3: "ACEI",
        4: "CFGH",
        5: "ABDH",
    }
    rows, cols = [], []
    for row, letters in pattern.items():
        for letter in letters:
            rows.append(row)
            cols.append(ord(letter) - ord("A"))
    values = np.arange(1.0, len(rows) + 1.0)
    return CooMatrix.from_arrays(np.array(rows), np.array(cols), values, (6, 9))
