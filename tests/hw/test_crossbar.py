"""Tests for the crossbar connector."""

import numpy as np
import pytest

from repro.errors import CollisionError, HardwareConfigError
from repro.hw.crossbar import Crossbar


class TestRouting:
    def test_routes_by_index(self):
        crossbar = Crossbar(4)
        products = np.array([1.0, 2.0, 3.0, 4.0])
        indices = np.array([2, 0, 3, 1])
        valid = np.ones(4, dtype=bool)
        routed, routed_valid = crossbar.route(products, indices, valid)
        np.testing.assert_array_equal(routed, [2.0, 4.0, 1.0, 3.0])
        assert routed_valid.all()
        assert crossbar.routed_count == 4

    def test_invalid_lanes_ignored(self):
        crossbar = Crossbar(3)
        products = np.array([1.0, np.nan, 3.0])
        indices = np.array([0, 0, 2])  # lane 1 also says 0, but is invalid
        valid = np.array([True, False, True])
        routed, routed_valid = crossbar.route(products, indices, valid)
        assert routed_valid.tolist() == [True, False, True]
        assert routed[0] == 1.0

    def test_empty_cycle(self):
        crossbar = Crossbar(2)
        routed, routed_valid = crossbar.route(
            np.zeros(2), np.zeros(2, dtype=np.int64), np.zeros(2, dtype=bool)
        )
        assert not routed_valid.any()


class TestGuards:
    def test_collision_raises(self):
        crossbar = Crossbar(2)
        with pytest.raises(CollisionError, match="adder 1"):
            crossbar.route(
                np.array([1.0, 2.0]),
                np.array([1, 1]),
                np.ones(2, dtype=bool),
            )

    def test_destination_out_of_range(self):
        crossbar = Crossbar(2)
        with pytest.raises(HardwareConfigError, match="destination"):
            crossbar.route(
                np.array([1.0, 2.0]),
                np.array([0, 5]),
                np.ones(2, dtype=bool),
            )

    def test_lane_mismatch(self):
        crossbar = Crossbar(2)
        with pytest.raises(HardwareConfigError, match="lane count"):
            crossbar.route(np.zeros(3), np.zeros(3, dtype=np.int64), np.ones(3, bool))

    def test_bad_length(self):
        with pytest.raises(HardwareConfigError, match="positive"):
            Crossbar(-1)
