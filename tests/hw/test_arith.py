"""Tests for multiplier and adder banks."""

import numpy as np
import pytest

from repro.errors import HardwareConfigError
from repro.hw.arith import AdderBank, MultiplierBank


class TestMultiplierBank:
    def test_products_and_counting(self):
        bank = MultiplierBank(3)
        products = bank.cycle(
            np.array([2.0, 3.0, 4.0]),
            np.array([10.0, 10.0, 10.0]),
            np.array([True, False, True]),
        )
        assert products[0] == 20.0
        assert np.isnan(products[1])
        assert products[2] == 40.0
        assert bank.active_ops == 2

    def test_lane_mismatch(self):
        bank = MultiplierBank(2)
        with pytest.raises(HardwareConfigError, match="lane count"):
            bank.cycle(np.zeros(3), np.zeros(3), np.ones(3, dtype=bool))

    def test_bad_length(self):
        with pytest.raises(HardwareConfigError, match="positive"):
            MultiplierBank(0)


class TestAdderBank:
    def test_accumulate_and_dump(self):
        bank = AdderBank(2)
        bank.accumulate(np.array([1.0, 2.0]), np.array([True, True]))
        bank.accumulate(np.array([3.0, 0.0]), np.array([True, False]))
        assert bank.active_ops == 3
        np.testing.assert_array_equal(bank.stored, [4.0, 2.0])

        dumped = bank.dump(np.array([0]))
        assert dumped.tolist() == [4.0]
        np.testing.assert_array_equal(bank.stored, [0.0, 2.0])

    def test_dump_clears_for_next_window(self):
        bank = AdderBank(1)
        bank.accumulate(np.array([5.0]), np.array([True]))
        bank.dump(np.array([0]))
        bank.accumulate(np.array([7.0]), np.array([True]))
        assert bank.dump(np.array([0])).tolist() == [7.0]

    def test_lane_mismatch(self):
        bank = AdderBank(2)
        with pytest.raises(HardwareConfigError, match="lane count"):
            bank.accumulate(np.zeros(3), np.ones(3, dtype=bool))
