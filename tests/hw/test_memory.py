"""Tests for the memory model and the paper's bit-width arithmetic."""

import pytest

from repro.errors import HardwareConfigError
from repro.hw.memory import (
    MemoryModel,
    buffer_filler_bits,
    row_index_bits,
    timestep_bits,
)


class TestBitWidths:
    def test_paper_logical_inputs(self):
        # Section 4: a length-256 GUST has 18,433 logical input bits
        # (256*32 matrix + 256*32 vector + 256*8 indices + 1 dump).
        assert timestep_bits(256) == 18_433

    def test_buffer_filler_double_buffer(self):
        # Section 4: 36,866 bits of on-chip memory for length 256.
        assert buffer_filler_bits(256) == 36_866

    def test_row_index_bits(self):
        assert row_index_bits(256) == 8
        assert row_index_bits(87) == 7
        assert row_index_bits(2) == 1
        assert row_index_bits(1) == 1

    def test_invalid_length(self):
        with pytest.raises(HardwareConfigError, match="positive"):
            row_index_bits(0)


class TestMemoryModel:
    def test_traffic_accounting(self):
        model = MemoryModel(4)
        model.stream_vector_in(10)
        model.stream_timestep(valid_lanes=3)
        model.write_outputs(4)
        stats = model.stats
        assert stats.offchip_read_words == 10 + 9
        assert stats.onchip_write_words == 10 + 9 + 6
        assert stats.onchip_read_words == 6 + 4
        assert stats.offchip_write_words == 4

    def test_merge(self):
        a = MemoryModel(2)
        a.stream_vector_in(5)
        b = MemoryModel(2)
        b.write_outputs(3)
        merged = a.stats.merge(b.stats)
        assert merged.offchip_read_words == 5
        assert merged.offchip_write_words == 3

    def test_bad_length(self):
        with pytest.raises(HardwareConfigError, match="positive"):
            MemoryModel(0)
