"""Tests for the FIFO primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareConfigError
from repro.hw.fifo import Fifo


class TestBasics:
    def test_fifo_order(self):
        fifo = Fifo()
        for item in (1, 2, 3):
            fifo.push(item)
        assert [fifo.pop() for _ in range(3)] == [1, 2, 3]

    def test_peek_does_not_remove(self):
        fifo = Fifo()
        fifo.push("a")
        assert fifo.peek() == "a"
        assert len(fifo) == 1

    def test_underflow(self):
        with pytest.raises(HardwareConfigError, match="underflow"):
            Fifo().pop()

    def test_peek_empty(self):
        with pytest.raises(HardwareConfigError, match="empty"):
            Fifo().peek()

    def test_overflow(self):
        fifo = Fifo(capacity=1)
        fifo.push(1)
        with pytest.raises(HardwareConfigError, match="overflow"):
            fifo.push(2)

    def test_bad_capacity(self):
        with pytest.raises(HardwareConfigError, match="capacity"):
            Fifo(capacity=0)


class TestAccounting:
    def test_max_depth_high_water(self):
        fifo = Fifo()
        fifo.push(1)
        fifo.push(2)
        fifo.pop()
        fifo.push(3)
        assert fifo.max_depth == 2
        assert fifo.total_pushed == 3

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_depth_invariants(self, ops):
        fifo = Fifo()
        depth = 0
        max_depth = 0
        for op in ops:
            if op == 0:
                fifo.push(object())
                depth += 1
                max_depth = max(max_depth, depth)
            elif depth:
                fifo.pop()
                depth -= 1
        assert len(fifo) == depth
        assert fifo.max_depth == max_depth
