"""Cross-module integration tests: dataset -> schedule -> machine -> solver."""

import numpy as np
import pytest

from repro import (
    GustPipeline,
    GustScheduler,
    ParallelGust,
    load_dataset,
    uniform_random,
)
from repro.accelerators import (
    AdderTree,
    Fafnir,
    FlexTpu,
    GustAccelerator,
    Serpens,
    Systolic1D,
)
from repro.core.load_balance import LoadBalancer


class TestDatasetsThroughPipeline:
    @pytest.mark.parametrize(
        "name", ["scircuit", "wiki-Vote", "TSCOPF-1047", "cage12"]
    )
    def test_surrogate_spmv_correct(self, name, rng):
        matrix = load_dataset(name, scale=128.0, floor_dim=512)
        x = rng.normal(size=matrix.shape[1])
        pipeline = GustPipeline(64, validate=True)
        result = pipeline.spmv(matrix, x)
        np.testing.assert_allclose(result.y, matrix.matvec(x), rtol=1e-9)


class TestAllDesignsAgree:
    def test_every_design_computes_the_same_product(self, rng):
        matrix = uniform_random(128, 128, 0.05, seed=21)
        x = rng.normal(size=128)
        expected = matrix.matvec(x)
        designs = [
            Systolic1D(32),
            AdderTree(32),
            FlexTpu(8),
            Fafnir(16),
            Serpens(channels=4, lanes=8),
            GustAccelerator(32),
            GustAccelerator(32, algorithm="naive", load_balance=False),
        ]
        for design in designs:
            np.testing.assert_allclose(
                design.spmv(matrix, x), expected, err_msg=design.name
            )

    def test_utilization_ordering_matches_paper(self):
        """Table 1's ordering: GUST EC/LB > Fafnir > FTPU > 1D ~= AT."""
        matrix = load_dataset("soc-Epinions1", scale=64.0, floor_dim=1024)
        utilizations = {
            "1D": Systolic1D(256).utilization(matrix),
            "AT": AdderTree(256).utilization(matrix),
            "FTPU": FlexTpu.with_units(256).utilization(matrix),
            "FAFNIR": Fafnir(128).utilization(matrix),
            "GUST": GustAccelerator(256).utilization(matrix),
        }
        assert utilizations["GUST"] > utilizations["FAFNIR"]
        assert utilizations["FAFNIR"] > utilizations["FTPU"]
        assert utilizations["FTPU"] > utilizations["1D"]
        assert utilizations["AT"] == pytest.approx(
            utilizations["1D"], rel=0.25
        )


class TestScheduleReuseChain:
    def test_pattern_reuse_through_value_updates(self, rng):
        """The Jacobian workflow: one coloring, many value refreshes."""
        matrix = uniform_random(96, 96, 0.06, seed=22)
        scheduler = GustScheduler(32, validate=True)
        balancer = LoadBalancer(32)
        balanced = balancer.balance(matrix)
        schedule = scheduler.schedule_balanced(balanced)
        pipeline = GustPipeline(32)

        for trial in range(3):
            values = rng.uniform(0.5, 1.5, size=matrix.nnz)
            updated = matrix.with_data(values)
            updated_balanced = balancer.balance(updated)
            refreshed = scheduler.reschedule_values(schedule, updated_balanced)
            x = rng.normal(size=96)
            y = pipeline.execute(refreshed, updated_balanced, x)
            np.testing.assert_allclose(y, updated.matvec(x))


class TestParallelEquivalence:
    def test_parallel_cycles_consistent_with_windows(self):
        matrix = load_dataset("bcircuit", scale=64.0, floor_dim=512)
        parallel = ParallelGust(64, units=4)
        report = parallel.run(matrix)
        assert sum(report.unit_cycles) == report.schedule.total_colors
        assert report.cycles >= max(report.unit_cycles)


class TestWindowEdgeCases:
    @pytest.mark.parametrize("m,n,length", [(5, 7, 8), (8, 8, 8), (9, 3, 4), (1, 1, 16)])
    def test_odd_shapes(self, m, n, length, rng):
        matrix = uniform_random(m, n, 0.5, seed=23)
        x = rng.normal(size=n)
        pipeline = GustPipeline(length, validate=True)
        result = pipeline.spmv(matrix, x)
        np.testing.assert_allclose(result.y, matrix.matvec(x))
        y_machine, _ = pipeline.execute_cycle_accurate(
            result.schedule, result.balanced, x
        )
        np.testing.assert_allclose(y_machine, matrix.matvec(x))
