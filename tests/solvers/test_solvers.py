"""Tests for the iterative solvers on GUST-scheduled operators."""

import numpy as np
import pytest

from repro import CooMatrix, GustPipeline
from repro.errors import SolverError
from repro.solvers import conjugate_gradient, jacobi, power_iteration
from repro.sparse.convert import from_dense, to_dense


def _spd_matrix(n: int, seed: int = 0) -> CooMatrix:
    """Sparse diagonally dominant SPD matrix."""
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n))
    for i in range(n):
        neighbours = rng.choice(n, size=3, replace=False)
        for j in neighbours:
            if i != j:
                value = -abs(rng.normal())
                dense[i, j] += value
                dense[j, i] += value
    dense += np.diag(np.abs(dense).sum(axis=1) + 1.0)
    return from_dense(dense)


class TestConjugateGradient:
    def test_solves_spd_system(self, rng):
        matrix = _spd_matrix(120, seed=1)
        x_true = rng.normal(size=120)
        b = matrix.matvec(x_true)
        result = conjugate_gradient(matrix, b, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-6)

    def test_matches_numpy_solve(self, rng):
        matrix = _spd_matrix(60, seed=2)
        b = rng.normal(size=60)
        result = conjugate_gradient(matrix, b, tol=1e-12)
        np.testing.assert_allclose(
            result.x, np.linalg.solve(to_dense(matrix), b), atol=1e-6
        )

    def test_accounting(self, rng):
        matrix = _spd_matrix(80, seed=3)
        b = rng.normal(size=80)
        result = conjugate_gradient(matrix, b)
        assert result.spmv_count == result.iterations
        assert result.total_accelerator_cycles > 0
        assert result.preprocess_seconds > 0

    def test_rejects_non_square(self):
        matrix = CooMatrix.from_arrays(
            np.array([0]), np.array([0]), np.ones(1), (2, 3)
        )
        with pytest.raises(SolverError, match="square"):
            conjugate_gradient(matrix, np.zeros(3))

    def test_rejects_indefinite(self):
        # -I is negative definite; CG must refuse.
        n = 8
        matrix = CooMatrix.from_arrays(
            np.arange(n), np.arange(n), -np.ones(n), (n, n)
        )
        with pytest.raises(SolverError, match="positive definite"):
            conjugate_gradient(matrix, np.ones(n))

    def test_wrong_b_length(self):
        matrix = _spd_matrix(10)
        with pytest.raises(SolverError, match="shape"):
            conjugate_gradient(matrix, np.zeros(11))

    def test_custom_pipeline(self, rng):
        matrix = _spd_matrix(64, seed=4)
        b = rng.normal(size=64)
        pipeline = GustPipeline(16, algorithm="first_fit")
        result = conjugate_gradient(matrix, b, pipeline=pipeline, tol=1e-10)
        assert result.converged


class TestJacobi:
    def test_solves_dominant_system(self, rng):
        matrix = _spd_matrix(100, seed=5)
        x_true = rng.normal(size=100)
        b = matrix.matvec(x_true)
        result = jacobi(matrix, b, tol=1e-10, max_iterations=2000)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-5)

    def test_rejects_zero_diagonal(self):
        matrix = CooMatrix.from_arrays(
            np.array([0, 1]), np.array([1, 0]), np.ones(2), (2, 2)
        )
        with pytest.raises(SolverError, match="diagonal"):
            jacobi(matrix, np.ones(2))

    def test_rejects_non_square(self):
        matrix = CooMatrix.from_arrays(
            np.array([0]), np.array([0]), np.ones(1), (1, 2)
        )
        with pytest.raises(SolverError, match="square"):
            jacobi(matrix, np.zeros(2))


class TestPowerIteration:
    def test_finds_dominant_eigenpair(self):
        matrix = _spd_matrix(60, seed=6)
        result = power_iteration(matrix, tol=1e-12, max_iterations=3000)
        dense = to_dense(matrix)
        eigenvalues = np.linalg.eigvalsh(dense)
        assert result.eigenvalue == pytest.approx(
            eigenvalues[-1], rel=1e-6
        )
        residual = dense @ result.vector - result.eigenvalue * result.vector
        assert np.linalg.norm(residual) < 1e-5

    def test_rejects_non_square(self):
        matrix = CooMatrix.from_arrays(
            np.array([0]), np.array([0]), np.ones(1), (1, 2)
        )
        with pytest.raises(SolverError, match="square"):
            power_iteration(matrix)

    def test_rejects_zero_matrix(self):
        matrix = CooMatrix.empty((4, 4))
        with pytest.raises(SolverError, match="annihilated"):
            power_iteration(matrix)
